#!/usr/bin/env python
"""PERF-ASYM: asymmetric-radius batch engine vs the per-instance event loop.

Writes the machine-readable baseline ``BENCH_asymmetric.json`` and asserts the
PR's acceptance criterion: on a 1,000-instance stratified Section 5 sweep
(250 instances per algorithmic type, radius ratios ``r_b / r_a`` cycling
through 1.0 / 0.75 / 0.5 / 0.25 under the compact-schedule universal
algorithm), :func:`repro.sim.batch_asymmetric.simulate_batch_asymmetric` must
be at least 10x faster than looping
:func:`repro.sim.asymmetric.simulate_asymmetric` per instance (raised from
the first generation's 8x).  The snapshot
also records the met/frozen counts and the per-instance agreement between the
engines, so a perf regression and a parity regression both show up as a JSON
diff.

Usage:
    PYTHONPATH=src python benchmarks/bench_asymmetric.py
        [--output BENCH_asymmetric.json] [--instances-per-type 250]
        [--quick] [--no-threshold] [--skip-event]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone

from repro.algorithms.registry import get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.geometry.backends import get_backend, resolve_kernel_threads
from repro.sim.asymmetric import simulate_asymmetric
from repro.sim.batch_asymmetric import simulate_batch_asymmetric

ALGORITHM = "almost-universal-compact"
MAX_TIME = 1e6
MAX_SEGMENTS = 100_000
RATIOS = (1.0, 0.75, 0.5, 0.25)
SPEEDUP_THRESHOLD = 10.0
TYPE_CLASSES = (
    InstanceClass.TYPE_1,
    InstanceClass.TYPE_2,
    InstanceClass.TYPE_3,
    InstanceClass.TYPE_4,
)


def stratified_sweep(per_type: int):
    """Instances stratified by type, each with a ratio from the cycling grid."""
    sampler = InstanceSampler(seed=7)
    instances = []
    for cls in TYPE_CLASSES:
        instances.extend(sampler.batch_of_class(cls, per_type))
    radii_a = [instance.r for instance in instances]
    radii_b = [
        instance.r * RATIOS[k % len(RATIOS)] for k, instance in enumerate(instances)
    ]
    return instances, radii_a, radii_b


def timed(func, *args, **kwargs):
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - start, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_asymmetric.json")
    parser.add_argument("--instances-per-type", type=int, default=250)
    parser.add_argument(
        "--quick", action="store_true",
        help="25 instances per type (smoke-test the script itself)",
    )
    parser.add_argument(
        "--no-threshold", action="store_true",
        help="measure and snapshot without asserting the 8x criterion",
    )
    parser.add_argument(
        "--skip-event", action="store_true",
        help="only measure the batch engine (no speedup/agreement fields)",
    )
    args = parser.parse_args()
    per_type = 25 if args.quick else args.instances_per_type

    instances, radii_a, radii_b = stratified_sweep(per_type)
    algorithm = get_algorithm(ALGORITHM)
    print(
        f"workload: {len(instances)} stratified instances, ratios {RATIOS}, "
        f"algorithm={ALGORITHM}, max_time={MAX_TIME:g}, max_segments={MAX_SEGMENTS}"
    )

    def run_batch():
        return simulate_batch_asymmetric(
            instances, algorithm, radius_a=radii_a, radius_b=radii_b,
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
        )

    run_batch()  # warm program/phase caches
    timed_runs = [timed(run_batch) for _ in range(3)]
    batch_seconds = min(seconds for seconds, _ in timed_runs)
    batch_outcomes = timed_runs[-1][1]
    print(
        f"asymmetric batch engine : {batch_seconds:.3f}s "
        f"({len(instances) / batch_seconds:,.0f} instances/s)"
    )

    snapshot = {
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "workload": {
            "instances": len(instances),
            "stratification": [cls.value for cls in TYPE_CLASSES],
            "radius_ratios": list(RATIOS),
            "algorithm": ALGORITHM,
            "max_time": MAX_TIME,
            "max_segments": MAX_SEGMENTS,
            "seed": 7,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        # Environment-resolved kernel settings of this measurement; results
        # never depend on them, wall times do.
        "kernel": {
            "backend": get_backend(None).name,
            "threads": resolve_kernel_threads(None),
        },
        "batch_engine": {
            "seconds": round(batch_seconds, 4),
            "instances_per_second": round(len(instances) / batch_seconds, 1),
            "met": sum(outcome.met for outcome in batch_outcomes),
            "frozen": sum(
                outcome.frozen_agent is not None for outcome in batch_outcomes
            ),
        },
    }

    speedup = None
    if not args.skip_event:
        def run_event():
            return [
                simulate_asymmetric(
                    instance, algorithm, radius_a=r_a, radius_b=r_b,
                    max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
                )
                for instance, r_a, r_b in zip(instances, radii_a, radii_b)
            ]

        event_seconds, event_outcomes = timed(run_event)
        speedup = event_seconds / batch_seconds
        agreement = sum(
            e.met == b.met and e.frozen_agent == b.frozen_agent
            for e, b in zip(event_outcomes, batch_outcomes)
        )
        snapshot["event_engine"] = {
            "seconds": round(event_seconds, 4),
            "instances_per_second": round(len(instances) / event_seconds, 1),
            "met": sum(outcome.met for outcome in event_outcomes),
            "frozen": sum(
                outcome.frozen_agent is not None for outcome in event_outcomes
            ),
        }
        snapshot["speedup"] = round(speedup, 2)
        snapshot["agreement"] = f"{agreement}/{len(instances)}"
        print(
            f"event engine loop       : {event_seconds:.3f}s "
            f"({len(instances) / event_seconds:,.0f} instances/s)"
        )
        print(
            f"speedup                 : {snapshot['speedup']}x, "
            f"met/frozen agreement {snapshot['agreement']}"
        )

    with open(args.output, "w") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    print(f"[saved] {args.output}")

    if speedup is not None and not args.no_threshold:
        assert speedup >= SPEEDUP_THRESHOLD, (
            f"asymmetric batch engine is only {speedup:.1f}x faster "
            f"(threshold {SPEEDUP_THRESHOLD:.0f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
