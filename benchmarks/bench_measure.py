"""SEC-4: the measure / dimension experiment and the vectorized classifier throughput."""

import numpy as np

from repro.analysis.measure import ParameterBox, classify_array
from repro.experiments.measure_experiment import run_measure_experiment


def test_measure_experiment(record_experiment):
    result = record_experiment(run_measure_experiment, samples=200_000, seed=5)
    by_class = {row["class"]: row for row in result.rows}
    assert by_class["S1-boundary"]["fraction_general_position"] == 0.0
    assert by_class["S2-boundary"]["fraction_general_position"] == 0.0
    assert by_class["infeasible"]["fraction_synchronous_slice"] > 0.0


def test_vectorized_classifier_throughput(benchmark):
    """Raw classification throughput (instances per call) of the numpy path."""
    box = ParameterBox(synchronous_fraction=0.5)
    params = box.sample(100_000, np.random.default_rng(0))
    classes = benchmark(classify_array, params)
    assert classes.shape == (100_000,)
