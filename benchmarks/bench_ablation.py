"""ABL-1 / ABL-2: timebase and schedule ablations."""

from repro.experiments.ablation import run_schedule_ablation, run_timebase_ablation


def test_timebase_ablation(record_experiment):
    result = record_experiment(run_timebase_ablation, max_segments=400_000)
    deep = [row for row in result.rows if row["case"].startswith("wait-and-sweep")][0]
    assert deep["exact_met"]
    shallow = [row for row in result.rows if row["case"].startswith("aurv")]
    assert all(row["float_met"] and row["exact_met"] for row in shallow)


def test_schedule_ablation(record_experiment):
    result = record_experiment(run_schedule_ablation, max_segments=400_000)
    for row in result.rows:
        assert row["paper_met"] and row["compact_met"]
