"""THM-3.1: the feasibility characterization experiment (dedicated witnesses)."""

from repro.experiments.theorem31 import run_characterization_experiment


def test_theorem31_characterization(record_experiment):
    result = record_experiment(
        run_characterization_experiment,
        samples_per_class=6,
        infeasible_samples=6,
        seed=7,
        max_segments=200_000,
    )
    by_label = {row["label"]: row for row in result.rows}
    feasible_labels = [label for label in by_label if label != "infeasible"]
    assert all(by_label[label]["success_rate"] == 1.0 for label in feasible_labels)
    assert by_label["infeasible"]["success_rate"] == 0.0
    assert by_label["infeasible"]["lower_bound_respected"] is True
