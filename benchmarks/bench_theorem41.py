"""THM-4.1 / Section 4: the exception sets S1 and S2."""

from repro.experiments.theorem41 import run_exception_boundary_experiment


def test_theorem41_exception_sets(record_experiment):
    result = record_experiment(
        run_exception_boundary_experiment,
        samples_per_set=4,
        seed=23,
        max_segments=200_000,
    )
    for row in result.rows:
        assert row["dedicated_success"] == row["samples"]
        assert row["dedicated_meets_at_exactly_r"] == row["samples"]
        assert row["universal_success_after_perturbation"] == row["samples"]
