"""THM-3.2: AlmostUniversalRV coverage across the four instance types."""

from repro.experiments.theorem32 import run_universal_coverage_experiment


def test_theorem32_universal_coverage(record_experiment):
    result = record_experiment(
        run_universal_coverage_experiment,
        samples_per_type=5,
        seed=11,
        max_segments=600_000,
    )
    for row in result.rows:
        assert row["success_rate"] == 1.0, row["label"]
