"""Batch-runner benchmark: inline versus process-pool execution of a campaign."""

import pytest

from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.parallel.runner import BatchRunner, BatchTask


def _tasks(count: int):
    sampler = InstanceSampler(seed=2)
    instances = []
    for cls in (InstanceClass.TYPE_2, InstanceClass.TYPE_4):
        instances.extend(sampler.batch_of_class(cls, count // 2))
    return [
        BatchTask.make(instance, "dedicated", max_time=1e7, max_segments=100_000)
        for instance in instances
    ]


@pytest.mark.parametrize("processes", [1, 4])
def test_batch_runner(benchmark, processes):
    tasks = _tasks(32)
    runner = BatchRunner(processes=processes)

    records = benchmark.pedantic(runner.run, args=(tasks,), rounds=1, iterations=1)
    assert len(records) == len(tasks)
    assert all(record["met"] for record in records)
    benchmark.extra_info["processes"] = processes
    benchmark.extra_info["tasks"] = len(tasks)
