"""SCALE-T: meeting-time scaling sweeps (delay, distance, radius)."""

from repro.experiments.scaling import run_scaling_experiment


def test_scaling_sweeps(record_experiment):
    result = record_experiment(
        run_scaling_experiment,
        delays=(0.5, 1.0, 2.0, 4.0),
        distances=(1.0, 2.0, 4.0),
        radii=(0.8, 0.4, 0.2),
        max_segments=600_000,
    )
    # Dedicated witnesses always meet; the universal algorithm meets on every
    # swept point as well (budgets are sized for these geometries).
    for row in result.rows:
        if "dedicated_met" in row:
            assert row["dedicated_met"]
        if "universal_met" in row:
            assert row["universal_met"]

    # Shape check: the dedicated witness is never slower than the universal
    # algorithm on the delay sweep (the enumeration overhead of Algorithm 1).
    delay_rows = [row for row in result.rows if row["sweep"] == "delay"]
    assert all(
        row["dedicated_meeting_time"] <= row["universal_meeting_time"] for row in delay_rows
    )
