"""Per-algorithm benchmarks: time-to-rendezvous of each procedure on its home turf.

One benchmark per algorithm family, each asserting the rendezvous outcome and
recording the simulated meeting time alongside the wall-clock cost.  Together
with bench_theorem32 these are the reproduction's "main results table".
"""

import math

import pytest

from repro.algorithms.almost_universal import AlmostUniversalRV
from repro.algorithms.cgkk import CGKK
from repro.algorithms.dedicated import (
    AlignedDelayWalk,
    AsynchronousWaitAndSweep,
    Lemma39Boundary,
    LinearProbe,
    OppositeChiralityLineSearch,
)
from repro.algorithms.latecomers import Latecomers
from repro.analysis.exceptions import make_s2_instance
from repro.core.instance import Instance
from repro.sim.engine import RendezvousSimulator

CASES = {
    "cgkk-type4": (CGKK(), Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.0)),
    "latecomers-type2": (Latecomers(), Instance(r=0.6, x=1.0, y=0.0, t=1.5)),
    "linear-probe-2a": (LinearProbe(), Instance(r=0.5, x=2.0, y=-1.0, phi=1.0, chi=1, t=3.0)),
    "wait-and-sweep-type3": (AsynchronousWaitAndSweep(), Instance(r=0.5, x=2.0, y=0.0, tau=2.0, t=1.0)),
    "aligned-delay-walk-2b": (AlignedDelayWalk(), Instance(r=0.5, x=3.0, y=0.0, t=4.0)),
    "line-search-2c": (OppositeChiralityLineSearch(), Instance(r=0.5, x=2.0, y=1.0, chi=-1, t=2.0)),
    "lemma39-s2-boundary": (Lemma39Boundary(), make_s2_instance(2.0, 1.0, 0.0, 0.5)),
    "aurv-type1": (AlmostUniversalRV(), Instance(r=0.5, x=2.0, y=1.0, phi=0.0, chi=-1, t=2.0)),
    "aurv-type2": (AlmostUniversalRV(), Instance(r=0.6, x=1.0, y=0.0, t=1.5)),
    "aurv-type4": (AlmostUniversalRV(), Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.5)),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_algorithm_rendezvous(benchmark, case):
    algorithm, instance = CASES[case]
    simulator = RendezvousSimulator(
        max_time=1e30, max_segments=600_000, timebase="exact", radius_slack=1e-9
    )

    def run():
        return simulator.run(instance, algorithm)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.met, case
    benchmark.extra_info["meeting_time"] = result.meeting_time
    benchmark.extra_info["segments"] = result.segments_total
    benchmark.extra_info["algorithm"] = result.algorithm_name


def test_aurv_type3_exact(benchmark):
    """Type-3 coverage needs the exact timebase (deep block-3 waits)."""
    instance = Instance(r=0.5, x=1.0, y=0.0, tau=0.5, v=1.0, t=0.0)
    simulator = RendezvousSimulator(max_time=1e45, max_segments=600_000, timebase="exact")

    def run():
        return simulator.run(instance, AlmostUniversalRV())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.met
    benchmark.extra_info["meeting_time"] = result.meeting_time
