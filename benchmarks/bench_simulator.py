"""PERF-SIM: raw simulator and kernel throughput.

These are the only benchmarks measuring *speed* rather than regenerating an
experiment: the closest-approach kernel, the trajectory compiler, the engine's
window loop under the two timebases, and the segment-count growth of
``PlanarCowWalk`` across phases (the quantity that dictates which phases of
Algorithm 1 are simulatable at all).
"""

import math

import pytest

from repro.algorithms.almost_universal import AlmostUniversalRV
from repro.algorithms.cow_walk import planar_cow_walk, planar_cow_walk_segment_count
from repro.core.instance import Instance
from repro.geometry.closest_approach import first_time_within
from repro.motion.compiler import compile_trajectory
from repro.sim.engine import RendezvousSimulator


def test_closest_approach_kernel(benchmark):
    """One million quadratic first-hit solves per second is the ballpark."""

    def run():
        total = 0.0
        for k in range(1000):
            hit = first_time_within(
                (0.0, 0.0), (1.0, 0.1), (10.0 + k * 0.01, 5.0), (-1.0, -0.4), 0.5, 50.0
            )
            if hit is not None:
                total += hit
        return total

    assert benchmark(run) > 0.0


def test_trajectory_compiler_throughput(benchmark):
    """Compile PlanarCowWalk(4) (~6.7k segments) through a non-trivial frame."""
    instance = Instance(r=0.5, x=1.0, y=1.0, phi=1.0, tau=2.0, v=0.5, t=1.0, chi=-1)
    spec = instance.agent_b()

    def run():
        return sum(1 for _ in compile_trajectory(spec, planar_cow_walk(4)))

    # One extra segment: the pre-wake sleep (the agent wakes at t = 1).
    assert benchmark(run) == planar_cow_walk_segment_count(4) + 1


@pytest.mark.parametrize("timebase", ["float", "exact"])
def test_engine_window_loop(benchmark, timebase):
    """Engine throughput on an infeasible instance (pure window processing)."""
    instance = Instance(r=0.25, x=50.0, y=0.0, t=0.1)
    simulator = RendezvousSimulator(
        max_time=1e9, max_segments=30_000, timebase=timebase
    )
    algorithm = AlmostUniversalRV()

    def run():
        return simulator.run(instance, algorithm)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert not result.met
    benchmark.extra_info["segments_processed"] = result.segments_total
    benchmark.extra_info["windows"] = result.windows_processed


@pytest.mark.parametrize("phase", [1, 2, 3, 4])
def test_planar_cow_walk_segment_growth(benchmark, phase):
    """Segment count per PlanarCowWalk phase (the Algorithm 1 cost driver)."""

    def run():
        return sum(1 for _ in planar_cow_walk(phase))

    count = benchmark(run)
    assert count == planar_cow_walk_segment_count(phase)
    benchmark.extra_info["segments"] = count
