"""Quickstart: classify an instance, pick algorithms, simulate, inspect results.

Run with::

    python examples/quickstart.py
"""

import math

from repro import (
    AlmostUniversalRV,
    Instance,
    classify,
    dedicated_witness,
    feasibility_clause,
    is_covered_by_universal,
    is_feasible,
    simulate,
)


def main() -> None:
    # An instance of the rendezvous problem: visibility radius 0.5; agent B
    # starts at (1, 1) in agent A's coordinates, with its axes rotated by 90
    # degrees, the same chirality, clock rate and speed, and wakes up 0.5 time
    # units after agent A.
    instance = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.5)
    print("Instance:", instance.describe())

    # 1. Where does it sit in the paper's taxonomy?
    print("Class (Section 3.1.1 / Theorem 3.1):", classify(instance).value)
    print("Feasibility clause:", feasibility_clause(instance).value)
    print("Feasible (Theorem 3.1):", is_feasible(instance))
    print("Covered by AlmostUniversalRV (Theorem 3.2):", is_covered_by_universal(instance))

    # 2. A dedicated algorithm (allowed to know the instance) meets quickly.
    witness = dedicated_witness(instance)
    dedicated_run = simulate(instance, witness)
    print(f"\nDedicated witness: {dedicated_run.summary()}")

    # 3. The single universal algorithm of the paper meets too — without
    #    knowing anything about the instance.
    universal_run = simulate(
        instance, AlmostUniversalRV(), max_time=1e9, max_segments=500_000
    )
    print(f"Universal algorithm: {universal_run.summary()}")

    slowdown = universal_run.meeting_time / dedicated_run.meeting_time
    print(
        f"\nThe universal algorithm pays a {slowdown:.1f}x meeting-time overhead for "
        "working on every feasible instance outside the exception sets."
    )


if __name__ == "__main__":
    main()
