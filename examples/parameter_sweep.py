"""Campaign example: sweep a parameter over many instances, in parallel.

Uses the stratified sampler and the process-pool batch runner to measure how
the meeting time of ``AlmostUniversalRV`` and of the dedicated witnesses
behaves across a population of type-1 and type-4 instances, then writes the
aggregate table and the raw records under ``results/``.

Run with::

    python examples/parameter_sweep.py            # uses all cores but one
    REPRO_SWEEP_PROCESSES=1 python examples/parameter_sweep.py   # force inline
"""

import os
from collections import defaultdict

from repro.analysis.sampler import InstanceSampler, SamplerConfig
from repro.core.classification import InstanceClass
from repro.experiments.report import format_table, results_directory, write_csv
from repro.parallel.runner import BatchRunner, BatchTask

SAMPLES_PER_CLASS = 12
CLASSES = (InstanceClass.TYPE_1, InstanceClass.TYPE_4)
ALGORITHMS = ("dedicated", "almost-universal")


def build_tasks():
    config = SamplerConfig(min_distance=1.5, max_distance=3.0, min_radius=0.4, max_radius=0.9)
    sampler = InstanceSampler(config, seed=2024)
    tasks = []
    for cls in CLASSES:
        for instance in sampler.batch_of_class(cls, SAMPLES_PER_CLASS):
            for algorithm in ALGORITHMS:
                tasks.append(
                    BatchTask.make(
                        instance,
                        algorithm,
                        tag=cls.value,
                        max_time=1e30,
                        max_segments=400_000,
                        timebase="exact",
                        radius_slack=1e-9,
                    )
                )
    return tasks


def main() -> None:
    processes = os.environ.get("REPRO_SWEEP_PROCESSES")
    runner = BatchRunner(processes=int(processes) if processes else None)
    tasks = build_tasks()
    print(f"Running {len(tasks)} simulations on {runner.resolved_processes()} processes...")
    records = runner.run(tasks)

    grouped = defaultdict(list)
    for record in records:
        grouped[(record["tag"], record["algorithm"])].append(record)

    rows = []
    for (cls, algorithm), group in sorted(grouped.items()):
        met = [r for r in group if r["met"]]
        rows.append(
            {
                "class": cls,
                "algorithm": algorithm,
                "runs": len(group),
                "met": len(met),
                "mean meeting time": (
                    round(sum(r["meeting_time"] for r in met) / len(met), 3) if met else None
                ),
                "mean segments": round(sum(r["segments_a"] + r["segments_b"] for r in group) / len(group), 1),
            }
        )
    print(format_table(rows))

    out = os.path.join(results_directory(), "parameter_sweep_records.csv")
    write_csv(records, out)
    print(f"\nRaw per-run records written to {out}")


if __name__ == "__main__":
    main()
