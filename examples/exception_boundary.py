"""What the universal algorithm misses: a walk along the exception boundary.

Section 4 of the paper shows that the only feasible instances not covered by
``AlmostUniversalRV`` form two thin sets S1 and S2, defined by the delay
sitting *exactly* on the feasibility threshold.  This example makes that
boundary tangible for one family of instances:

* on the boundary, the dedicated algorithm meets — at distance exactly ``r``,
  with zero slack;
* an epsilon more delay and the universal algorithm covers the instance;
* an epsilon less and nothing can (the instance is infeasible).

Run with::

    python examples/exception_boundary.py
"""

from repro import AlmostUniversalRV, classify, dedicated_witness, simulate
from repro.analysis.exceptions import make_s2_instance, perturb_off_boundary
from repro.experiments.report import format_table


def probe(instance, label):
    cls = classify(instance)
    row = {"delay offset": label, "class": cls.value}
    witness = dedicated_witness(instance)
    if witness is None:
        row["dedicated"] = "impossible (Theorem 3.1)"
    else:
        run = simulate(instance, witness, max_time=1e7, radius_slack=1e-9)
        row["dedicated"] = (
            f"met, final distance {run.meeting_distance:.6f}" if run.met else "missed"
        )
    universal = simulate(
        instance, AlmostUniversalRV(), max_time=1e9, max_segments=250_000
    )
    row["AlmostUniversalRV"] = (
        f"met at t={universal.meeting_time:.3g}"
        if universal.met
        else f"not within budget (closest {universal.min_distance:.4f}, r={instance.r})"
    )
    return row


def main() -> None:
    boundary = make_s2_instance(2.0, 1.0, 0.0, 0.5)
    print("Boundary instance (S2):", boundary.describe())
    print("  the delay equals dist(projA, projB) - r =", boundary.t, "\n")

    offsets = [
        ("-0.25 (too early)", -0.25),
        ("-0.05", -0.05),
        ("0 (the boundary)", 0.0),
        ("+0.05", +0.05),
        ("+0.25", +0.25),
        ("+1.0", +1.0),
    ]
    rows = []
    for label, delta in offsets:
        instance = boundary if delta == 0.0 else perturb_off_boundary(boundary, delta)
        rows.append(probe(instance, label))
    print(format_table(rows))
    print(
        "\nReading the table top to bottom: infeasible below the boundary, feasible-but-only-\n"
        "dedicated exactly on it (meeting distance exactly r = 0.5), and universal coverage as\n"
        "soon as there is any slack at all — the exception sets have measure zero."
    )


if __name__ == "__main__":
    main()
