"""Search-and-rescue scenario: two drones must physically meet after a drop.

Two autonomous drones are air-dropped over a disaster area to merge their
partial maps.  They cannot communicate (radios are down); they can only *see*
each other within some visibility range.  Their flight controllers are
identical (same firmware = same deterministic algorithm, no identifiers), but
the drop leaves them with:

* different positions (obviously),
* compasses misaligned by an unknown angle (orientation ``phi``),
* possibly mirrored camera rigs (chirality ``chi``),
* clocks that drift at different rates (``tau``) and different cruise speeds
  (``v``),
* and different boot times after the drop (delay ``t``).

That is exactly the model of the paper.  This example uses the library to
answer the operational questions: *will they ever meet?  with which firmware
(dedicated vs universal)?  how long will it take as the visibility range
degrades?*

Run with::

    python examples/search_and_rescue.py
"""

import math

from repro import (
    AlmostUniversalRV,
    Instance,
    classify,
    dedicated_witness,
    feasibility_clause,
    simulate,
)
from repro.experiments.report import format_table

#: Drop outcomes (all lengths in kilometres, times in minutes, speeds in km/min).
SCENARIOS = {
    "clean drop, misaligned compasses": dict(
        x=1.2, y=0.8, phi=math.pi / 3.0, tau=1.0, v=1.0, t=0.0, chi=1
    ),
    "one drone boots late": dict(x=2.0, y=0.5, phi=0.0, tau=1.0, v=1.0, t=2.5, chi=1),
    "mirrored camera rig": dict(x=1.5, y=1.0, phi=0.0, tau=1.0, v=1.0, t=2.0, chi=-1),
    "clock drift between units": dict(x=1.5, y=0.0, phi=1.0, tau=0.6, v=1.0, t=0.5, chi=1),
    "identical twins, simultaneous boot": dict(x=2.0, y=0.0, phi=0.0, tau=1.0, v=1.0, t=0.0, chi=1),
}

VISIBILITY_KM = 0.4


def assess(label: str, params: dict) -> dict:
    instance = Instance(r=VISIBILITY_KM, **params)
    cls = classify(instance)
    clause = feasibility_clause(instance)
    row = {
        "scenario": label,
        "class": cls.value,
        "why": clause.value,
    }
    witness = dedicated_witness(instance)
    if witness is None:
        row["mission plan"] = "abort: no algorithm can make them meet"
        row["ETA dedicated (min)"] = None
        row["ETA universal (min)"] = None
        return row
    dedicated_run = simulate(
        instance, witness, max_time=1e9, max_segments=300_000, radius_slack=1e-9
    )
    universal_run = simulate(
        instance, AlmostUniversalRV(), max_time=1e30, max_segments=500_000, timebase="exact"
    )
    row["mission plan"] = f"dedicated firmware: {witness.name}"
    row["ETA dedicated (min)"] = round(dedicated_run.meeting_time, 2) if dedicated_run.met else None
    row["ETA universal (min)"] = round(universal_run.meeting_time, 2) if universal_run.met else None
    return row


def visibility_degradation() -> list:
    """How the universal firmware's ETA grows as smoke reduces visibility."""
    rows = []
    for visibility in (0.8, 0.4, 0.2, 0.1):
        instance = Instance(r=visibility, x=1.2, y=0.8, phi=math.pi / 3.0, t=0.0)
        run = simulate(
            instance, AlmostUniversalRV(), max_time=1e30, max_segments=600_000, timebase="exact"
        )
        rows.append(
            {
                "visibility (km)": visibility,
                "met": run.met,
                "ETA universal (min)": round(run.meeting_time, 2) if run.met else None,
                "trajectory segments simulated": run.segments_total,
            }
        )
    return rows


def main() -> None:
    print("Mission assessment (visibility", VISIBILITY_KM, "km)\n")
    rows = [assess(label, params) for label, params in SCENARIOS.items()]
    print(format_table(rows))
    print(
        "\nThe 'identical twins' drop is the paper's impossibility case: same clocks, speeds,\n"
        "compasses, chirality and boot time — their distance can never change, so the mission\n"
        "must be aborted (or the drop re-done with an induced asymmetry).\n"
    )
    print("Visibility degradation for the misaligned-compass drop:\n")
    print(format_table(visibility_degradation()))


if __name__ == "__main__":
    main()
