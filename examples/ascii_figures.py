"""Terminal rendering of the paper's geometry and of live simulations.

Draws Figure-1-style scenes (agents, frames, canonical line) and the actual
trajectories followed by the dedicated clause-2c algorithm and by
``AlmostUniversalRV``, straight in the terminal — no plotting library needed.
It also exports all figure data (JSON, plus PNG when matplotlib is installed)
under ``results/``.

Run with::

    python examples/ascii_figures.py
"""

from repro import AlmostUniversalRV, Instance, simulate
from repro.algorithms.dedicated import OppositeChiralityLineSearch
from repro.experiments.figures import FIGURE1_INSTANCE
from repro.viz import export_all_figures, render_scene, render_simulation


def main() -> None:
    print("Figure 1 — an instance with opposite chiralities and its canonical line\n")
    print(render_scene(FIGURE1_INSTANCE))

    instance = Instance(r=0.5, x=2.0, y=1.0, phi=0.0, chi=-1, t=2.0)
    print("\nDedicated clause-2c line search (trajectories + meeting point)\n")
    dedicated = simulate(
        instance, OppositeChiralityLineSearch(), max_time=1e6, record_trajectories=True
    )
    print(render_simulation(dedicated))

    print("\nAlmostUniversalRV on the same instance\n")
    universal = simulate(
        instance, AlmostUniversalRV(), max_time=1e9, max_segments=400_000,
        record_trajectories=True,
    )
    print(render_simulation(universal))

    exported = export_all_figures()
    print("\nFigure data exported:")
    for item in exported:
        print("  ", item["json"], "(+ PNG)" if "png" in item else "")


if __name__ == "__main__":
    main()
