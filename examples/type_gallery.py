"""A gallery of the paper's instance taxonomy.

One representative instance per class — the four algorithmic types of Section
3.1.1, the two exception boundaries of Section 4, an infeasible instance and a
trivial one — each simulated under the dedicated witness (when one exists) and
under ``AlmostUniversalRV``.

Run with::

    python examples/type_gallery.py
"""

import math

from repro import AlmostUniversalRV, Instance, classify, dedicated_witness, simulate
from repro.analysis.exceptions import make_s1_instance, make_s2_instance
from repro.experiments.report import format_table

GALLERY = {
    "trivial": Instance(r=2.0, x=1.0, y=0.5),
    "type-1  (chi=-1, late wake-up)": Instance(r=0.5, x=2.0, y=1.0, phi=0.0, chi=-1, t=2.0),
    "type-2  (shift frames, late wake-up)": Instance(r=0.6, x=1.0, y=0.0, t=1.5),
    "type-3  (different clock rates)": Instance(r=0.5, x=1.0, y=0.0, tau=0.5),
    "type-4  (rotated frames)": Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, t=0.5),
    "type-4  (different speeds)": Instance(r=0.5, x=1.0, y=0.0, v=2.0, t=0.5),
    "S1 boundary (t = dist - r)": make_s1_instance(3.0, 4.0, 1.0),
    "S2 boundary (t = proj dist - r)": make_s2_instance(2.0, 1.0, 0.0, 0.5),
    "infeasible (wakes up too early)": Instance(r=0.5, x=3.0, y=0.0, t=0.5),
}


def main() -> None:
    rows = []
    universal = AlmostUniversalRV()
    for label, instance in GALLERY.items():
        cls = classify(instance)
        witness = dedicated_witness(instance)
        if witness is not None:
            dedicated_run = simulate(
                instance, witness, max_time=1e9, max_segments=300_000, radius_slack=1e-9
            )
            dedicated_cell = (
                f"met at t={dedicated_run.meeting_time:.3g}" if dedicated_run.met else "no"
            )
        else:
            dedicated_cell = "none exists (Theorem 3.1)"
        universal_run = simulate(
            instance,
            universal,
            max_time=1e30,
            max_segments=400_000,
            timebase="exact",
        )
        universal_cell = (
            f"met at t={universal_run.meeting_time:.3g}"
            if universal_run.met
            else f"no (closest {universal_run.min_distance:.3g})"
        )
        rows.append(
            {
                "instance": label,
                "class": cls.value,
                "dedicated algorithm": dedicated_cell,
                "AlmostUniversalRV": universal_cell,
            }
        )
    print(format_table(rows))
    print(
        "\nNote how the two boundary instances are feasible (a dedicated algorithm meets,\n"
        "at distance exactly r) while the universal algorithm is not guaranteed there —\n"
        "and how the infeasible instance admits no algorithm at all."
    )


if __name__ == "__main__":
    main()
