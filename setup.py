"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed editable (``pip install -e .``) in fully offline
environments where pip cannot set up a PEP 517 build-isolation environment
(no network access to fetch ``setuptools``/``wheel``).
"""

from setuptools import setup

setup()
