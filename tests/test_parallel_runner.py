"""Tests for the process-pool batch runner."""

import math

import pytest

from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.parallel.runner import BatchRunner, BatchTask, run_batch


class TestBatchTask:
    def test_make_serializes_instance(self):
        instance = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0)
        task = BatchTask.make(instance, "linear-probe", tag="demo", max_time=100.0)
        assert task.instance["x"] == 1.0
        assert task.algorithm == "linear-probe"
        assert task.simulator_options == {"max_time": 100.0}
        assert task.tag == "demo"


class TestInlineExecution:
    def test_run_batch_inline(self):
        instances = [
            Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0),
            Instance(r=0.5, x=-1.0, y=0.5, phi=1.0),
        ]
        records = run_batch(instances, "linear-probe", processes=1, max_time=1e4, tag="t")
        assert len(records) == 2
        assert all(record["met"] for record in records)
        assert all(record["algorithm"] == "dedicated-linear-probe" for record in records)
        assert all(record["tag"] == "t" for record in records)
        assert records[0]["instance_x"] == 1.0

    def test_small_batches_stay_inline_even_with_many_processes(self):
        runner = BatchRunner(processes=8, min_parallel=100)
        tasks = [
            BatchTask.make(Instance(r=2.0, x=1.0, y=0.0), "stay-put", max_time=10.0)
            for _ in range(3)
        ]
        records = runner.run(tasks)
        assert len(records) == 3 and all(r["met"] for r in records)

    def test_resolved_processes(self):
        assert BatchRunner(processes=3).resolved_processes() == 3
        assert BatchRunner(processes=0).resolved_processes() == 1
        assert BatchRunner(processes=None).resolved_processes() >= 1


class TestParallelExecution:
    def test_pool_execution_matches_inline(self):
        sampler = InstanceSampler(seed=3)
        instances = sampler.batch_of_class(InstanceClass.TYPE_4, 10)
        inline = run_batch(instances, "dedicated", processes=1, max_time=1e6, max_segments=50_000)
        pooled = run_batch(instances, "dedicated", processes=2, max_time=1e6, max_segments=50_000)
        assert len(pooled) == len(inline) == 10
        for a, b in zip(inline, pooled):
            assert a["met"] == b["met"]
            assert a["meeting_time"] == pytest.approx(b["meeting_time"])
            assert a["instance_x"] == b["instance_x"]

    def test_order_is_preserved(self):
        instances = [Instance(r=2.0, x=float(k % 3 + 1) * 0.1, y=0.0) for k in range(12)]
        records = run_batch(instances, "stay-put", processes=2, max_time=10.0)
        assert [rec["instance_x"] for rec in records] == [inst.x for inst in instances]
