"""Tests for the process-pool batch runner."""

import math

import pytest

import repro.parallel.runner as runner_module
from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.parallel.runner import BatchRunner, BatchTask, run_batch
from repro.sim.asymmetric import simulate_asymmetric


class TestBatchTask:
    def test_make_serializes_instance(self):
        instance = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0)
        task = BatchTask.make(instance, "linear-probe", tag="demo", max_time=100.0)
        assert task.instance["x"] == 1.0
        assert task.algorithm == "linear-probe"
        assert task.simulator_options == {"max_time": 100.0}
        assert task.tag == "demo"


class TestInlineExecution:
    def test_run_batch_inline(self):
        instances = [
            Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0),
            Instance(r=0.5, x=-1.0, y=0.5, phi=1.0),
        ]
        records = run_batch(instances, "linear-probe", processes=1, max_time=1e4, tag="t")
        assert len(records) == 2
        assert all(record["met"] for record in records)
        assert all(record["algorithm"] == "dedicated-linear-probe" for record in records)
        assert all(record["tag"] == "t" for record in records)
        assert records[0]["instance_x"] == 1.0

    def test_small_batches_stay_inline_even_with_many_processes(self):
        runner = BatchRunner(processes=8, min_parallel=100)
        tasks = [
            BatchTask.make(Instance(r=2.0, x=1.0, y=0.0), "stay-put", max_time=10.0)
            for _ in range(3)
        ]
        records = runner.run(tasks)
        assert len(records) == 3 and all(r["met"] for r in records)

    def test_resolved_processes(self):
        assert BatchRunner(processes=3).resolved_processes() == 3
        assert BatchRunner(processes=0).resolved_processes() == 1
        assert BatchRunner(processes=None).resolved_processes() >= 1


class TestParallelExecution:
    def test_pool_execution_matches_inline(self):
        sampler = InstanceSampler(seed=3)
        instances = sampler.batch_of_class(InstanceClass.TYPE_4, 10)
        inline = run_batch(instances, "dedicated", processes=1, max_time=1e6, max_segments=50_000)
        pooled = run_batch(instances, "dedicated", processes=2, max_time=1e6, max_segments=50_000)
        assert len(pooled) == len(inline) == 10
        for a, b in zip(inline, pooled):
            assert a["met"] == b["met"]
            assert a["meeting_time"] == pytest.approx(b["meeting_time"])
            assert a["instance_x"] == b["instance_x"]

    def test_order_is_preserved(self):
        instances = [Instance(r=2.0, x=float(k % 3 + 1) * 0.1, y=0.0) for k in range(12)]
        records = run_batch(instances, "stay-put", processes=2, max_time=10.0)
        assert [rec["instance_x"] for rec in records] == [inst.x for inst in instances]


class TestPersistentPool:
    def test_executor_is_reused_across_runs(self):
        runner = BatchRunner(engine="event", processes=2, min_parallel=2)
        tasks = [
            BatchTask.make(Instance(r=2.0, x=1.0, y=0.0), "stay-put", max_time=10.0)
            for _ in range(4)
        ]
        try:
            first = runner.run(tasks)
            executor = runner._executor
            assert executor is not None
            second = runner.run(tasks)
            assert runner._executor is executor  # same pool, no respawn
            assert [r["met"] for r in first] == [r["met"] for r in second]
        finally:
            runner.close()
        assert runner._executor is None

    def test_close_is_idempotent_and_runner_stays_usable(self):
        runner = BatchRunner(engine="event", processes=2, min_parallel=2)
        runner.close()  # nothing created yet
        tasks = [
            BatchTask.make(Instance(r=2.0, x=1.0, y=0.0), "stay-put", max_time=10.0)
            for _ in range(4)
        ]
        records = runner.run(tasks)
        runner.close()
        runner.close()
        assert all(r["met"] for r in records)
        # Usable again after close: a fresh pool spawns on demand.
        assert all(r["met"] for r in runner.run(tasks))
        runner.close()

    def test_context_manager_closes_pool(self):
        tasks = [
            BatchTask.make(Instance(r=2.0, x=1.0, y=0.0), "stay-put", max_time=10.0)
            for _ in range(4)
        ]
        with BatchRunner(engine="event", processes=2, min_parallel=2) as runner:
            runner.run(tasks)
            assert runner._executor is not None
        assert runner._executor is None

    def test_changed_process_count_rebuilds_pool(self):
        runner = BatchRunner(engine="event", processes=2, min_parallel=2)
        tasks = [
            BatchTask.make(Instance(r=2.0, x=1.0, y=0.0), "stay-put", max_time=10.0)
            for _ in range(4)
        ]
        try:
            runner.run(tasks)
            first_pool = runner._executor
            runner.processes = 3
            runner.run(tasks)
            assert runner._executor is not first_pool
            assert runner._executor_workers == 3
        finally:
            runner.close()


class TestPerTaskRadiusColumns:
    def _ratio_sweep_tasks(self, count=8):
        sampler = InstanceSampler(seed=23)
        instances = sampler.batch_of_class(InstanceClass.TYPE_1, count)
        ratios = (1.0, 0.75, 0.5, 0.25)
        tasks = []
        for k, instance in enumerate(instances):
            tasks.append(
                BatchTask.make(
                    instance,
                    "almost-universal-compact",
                    tag=str(k),
                    max_time=1e5,
                    max_segments=20_000,
                    radius_a=instance.r,
                    radius_b=instance.r * ratios[k % len(ratios)],
                )
            )
        return instances, tasks

    def test_mixed_ratio_sweep_is_one_batch_call(self, monkeypatch):
        instances, tasks = self._ratio_sweep_tasks()
        calls = []
        real = runner_module.simulate_batch_asymmetric

        def spy(*args, **kwargs):
            calls.append(kwargs)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "simulate_batch_asymmetric", spy)
        records = BatchRunner(processes=1).run(tasks)
        # Distinct per-task radii stack into per-instance columns of a
        # single vectorized call instead of one group per radius pair.
        assert len(calls) == 1
        assert len(calls[0]["radius_a"]) == len(tasks)
        assert len(records) == len(tasks)

    def test_mixed_ratio_sweep_matches_per_task_event_runs(self):
        instances, tasks = self._ratio_sweep_tasks()
        records = BatchRunner(processes=1).run(tasks)
        assert [rec["tag"] for rec in records] == [str(k) for k in range(len(tasks))]
        for task, instance, record in zip(tasks, instances, records):
            outcome = simulate_asymmetric(
                instance,
                runner_module.get_algorithm(task.algorithm),
                radius_a=task.simulator_options["radius_a"],
                radius_b=task.simulator_options["radius_b"],
                max_time=task.simulator_options["max_time"],
                max_segments=task.simulator_options["max_segments"],
            )
            assert record["met"] == outcome.met
            assert record["termination"] == outcome.result.termination.value
            if outcome.met:
                assert record["meeting_time"] == pytest.approx(
                    outcome.result.meeting_time, rel=1e-9
                )

    def test_single_sided_radius_defaults_to_instance_r(self):
        instance = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0)
        tasks = [
            BatchTask.make(instance, "almost-universal-compact",
                           max_time=1e4, radius_b=0.25),
        ]
        record = BatchRunner(processes=1).run(tasks)[0]
        outcome = simulate_asymmetric(
            instance,
            runner_module.get_algorithm("almost-universal-compact"),
            radius_b=0.25,
            max_time=1e4,
        )
        assert record["met"] == outcome.met
        if outcome.met:
            assert record["meeting_time"] == pytest.approx(
                outcome.result.meeting_time, rel=1e-9
            )

    def test_symmetric_tasks_do_not_mix_with_asymmetric(self, monkeypatch):
        instance = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0)
        tasks = [
            BatchTask.make(instance, "almost-universal-compact", max_time=1e4),
            BatchTask.make(instance, "almost-universal-compact", max_time=1e4,
                           radius_a=0.5, radius_b=0.25),
        ]
        symmetric_calls = []
        asymmetric_calls = []
        real_sym = runner_module.simulate_batch
        real_asym = runner_module.simulate_batch_asymmetric
        monkeypatch.setattr(
            runner_module, "simulate_batch",
            lambda *a, **k: symmetric_calls.append(k) or real_sym(*a, **k),
        )
        monkeypatch.setattr(
            runner_module, "simulate_batch_asymmetric",
            lambda *a, **k: asymmetric_calls.append(k) or real_asym(*a, **k),
        )
        records = BatchRunner(processes=1).run(tasks)
        assert len(symmetric_calls) == 1 and len(asymmetric_calls) == 1
        assert len(records) == 2 and all(rec["met"] for rec in records)
