"""The scheduler: dispatch, retry/backoff, quarantine, graceful drain.

Real campaign runs (tiny specs) keep the scheduler honest against the actual
orchestrator; failure paths are injected through ``shard_hook`` (the
campaign layer's own fault seam) and through specs whose algorithm arm is
made to fail.
"""

import threading
import time

import pytest

from repro.campaign import CampaignArm, CampaignSpec, CampaignStore
from repro.campaign.executor import FaultInjection
from repro.service import JobQueue, Scheduler, ServiceError


def make_spec(**overrides):
    base = dict(
        name="scheduler-unit",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1",),
        instances_per_cell=4,
        seed=11,
        simulator={"max_time": 1e5, "max_segments": 20_000},
        shard_size=2,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestValidation:
    def test_bad_knobs_rejected(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(ServiceError, match="max_concurrent"):
            Scheduler(queue, max_concurrent=0)
        with pytest.raises(ServiceError, match="max_attempts"):
            Scheduler(queue, max_attempts=-1)
        with pytest.raises(ServiceError, match="retry_backoff"):
            Scheduler(queue, retry_backoff=-0.5)


class TestExecution:
    def test_job_runs_to_complete(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        scheduler = Scheduler(queue)
        scheduler.run_until_idle(timeout=120)
        done = queue.job(job.digest)
        assert done.state == "complete"
        assert done.attempts == 1
        assert done.stats["complete"] is True
        assert done.stats["rows_recomputed"] == 0
        assert scheduler.jobs_completed == 1
        # The store landed under the service's stores/<digest> directory.
        store = CampaignStore(queue.store_path(job.digest))
        columns = store.export_columns()
        assert len(next(iter(columns.values()))) == 4

    def test_exception_retries_then_quarantines(self, tmp_path):
        def explode(shard):
            raise RuntimeError("injected orchestration failure")

        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        scheduler = Scheduler(
            queue,
            max_attempts=2,
            retry_backoff=0.0,
            # A hook raising a plain exception crashes the run itself — the
            # job-level failure mode, as opposed to a FaultInjection which the
            # campaign layer absorbs per shard.
            campaign_options={"shard_hook": explode, "max_attempts": 1},
        )
        scheduler.run_until_idle(timeout=60)
        done = queue.job(job.digest)
        assert done.state == "quarantined"
        assert done.attempts == 2
        assert "injected orchestration failure" in done.error
        assert scheduler.jobs_quarantined == 1

    def test_degraded_store_quarantines_job_immediately(self, tmp_path):
        def poison(shard):
            raise FaultInjection("fail")

        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        scheduler = Scheduler(
            queue,
            max_attempts=5,
            retry_backoff=0.0,
            campaign_options={"shard_hook": poison, "max_attempts": 1},
        )
        scheduler.run_until_idle(timeout=60)
        done = queue.job(job.digest)
        # One dispatch only: retrying a degraded store would re-hit the same
        # poison shards, so the scheduler quarantines without burning attempts.
        assert done.state == "quarantined"
        assert done.attempts == 1
        assert "doctor --repair" in done.error

    def test_two_jobs_with_bounded_concurrency(self, tmp_path):
        queue = JobQueue(tmp_path)
        a, _ = queue.submit(make_spec(seed=1))
        b, _ = queue.submit(make_spec(seed=2))
        scheduler = Scheduler(queue, max_concurrent=1)
        scheduler.run_until_idle(timeout=240)
        assert queue.job(a.digest).state == "complete"
        assert queue.job(b.digest).state == "complete"
        assert scheduler.jobs_completed == 2


class TestDrain:
    def test_stop_leaves_job_running_for_resume(self, tmp_path):
        started = threading.Event()

        def slow(shard):
            started.set()
            time.sleep(0.2)

        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec(instances_per_cell=16, shard_size=1))
        scheduler = Scheduler(queue, campaign_options={"shard_hook": slow})
        thread = threading.Thread(target=scheduler.run_forever, daemon=True)
        thread.start()
        assert started.wait(timeout=60)
        scheduler.stop(timeout=60)
        thread.join(timeout=10)
        assert scheduler.inflight() == 0
        interrupted = queue.job(job.digest)
        # The drained job stays `running` — the recovery signal, not an error.
        assert interrupted.state == "running"
        assert interrupted in queue.eligible()

        # A fresh scheduler (the "next session") resumes it to completion
        # with zero recomputed shards.
        resumed = Scheduler(JobQueue(tmp_path))
        resumed.run_until_idle(timeout=120)
        done = resumed.queue.job(job.digest)
        assert done.state == "complete"
        assert done.stats["rows_recomputed"] == 0
        assert done.attempts == 2
