"""Campaign specs and shard plans: serialization, identity, determinism.

The campaign contracts pinned here: a spec round-trips through JSON with a
stable content digest (name excluded), the shard plan is a pure function of
the spec with content-addressed shard ids, and — the load-bearing one — the
sampled instance stream is *independent of the shard partition*: any shard
size yields bit-identical instances at every position, which is what makes
resume and re-partitioning safe.
"""

import numpy as np
import pytest

from repro.analysis.sampler import SamplerConfig, sample_spawned, spawn_instance_seeds
from repro.campaign import (
    CampaignArm,
    CampaignError,
    CampaignSpec,
    plan_shards,
    shard_instances,
    shard_tasks,
)


def make_spec(**overrides):
    base = dict(
        name="unit",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1", "type-2"),
        instances_per_cell=10,
        seed=5,
        simulator={"max_time": 1e6, "max_segments": 50_000},
        shard_size=4,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestCampaignSpec:
    def test_round_trips_through_json(self):
        spec = make_spec(
            arms=(
                CampaignArm(algorithm="almost-universal-compact"),
                CampaignArm(
                    algorithm="almost-universal-compact",
                    label="quarter",
                    options={"radius_a_ratio": 1.0, "radius_b_ratio": 0.25},
                ),
            ),
            sampler={"min_radius": 0.3, "max_radius": 0.9},
        )
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_excludes_name_but_covers_work(self):
        spec = make_spec()
        assert make_spec(name="renamed").digest() == spec.digest()
        assert make_spec(seed=6).digest() != spec.digest()
        assert make_spec(instances_per_cell=11).digest() != spec.digest()
        assert make_spec(shard_size=5).digest() != spec.digest()
        assert make_spec(simulator={"max_time": 2e6}).digest() != spec.digest()

    def test_arm_options_merge_over_campaign_defaults(self):
        spec = make_spec(
            arms=(
                CampaignArm(
                    algorithm="almost-universal-compact",
                    options={"max_segments": 7},
                ),
            )
        )
        assert spec.arm_options(0) == {"max_time": 1e6, "max_segments": 7}

    def test_uniform_class_and_instance_class(self):
        spec = make_spec(classes=("uniform", "type-3"))
        assert spec.instance_class(0) is None
        assert spec.instance_class(1).value == "type-3"

    @pytest.mark.parametrize(
        "overrides, match",
        [
            (dict(arms=()), "at least one arm"),
            (dict(classes=()), "at least one instance class"),
            (dict(classes=("type-9",)), "unknown instance class"),
            (dict(classes=("type-1", "type-1")), "unique"),
            (dict(instances_per_cell=0), "instances_per_cell"),
            (dict(shard_size=0), "shard_size"),
            (dict(name=""), "named"),
            (dict(sampler={"min_radius": -1.0}), "sampler"),
            (dict(simulator={"radius_b_ratio": 0.5}), "per-arm option"),
        ],
    )
    def test_validation_errors(self, overrides, match):
        with pytest.raises(CampaignError, match=match):
            make_spec(**overrides)

    def test_duplicate_arm_labels_rejected(self):
        with pytest.raises(CampaignError, match="unique"):
            make_spec(
                arms=(
                    CampaignArm(algorithm="almost-universal-compact"),
                    CampaignArm(algorithm="almost-universal-compact"),
                )
            )

    def test_validate_algorithms_catches_typos(self):
        spec = make_spec(arms=(CampaignArm(algorithm="no-such-algorithm"),))
        with pytest.raises(CampaignError, match="no-such-algorithm"):
            spec.validate_algorithms()

    def test_sampler_config_resolves(self):
        spec = make_spec(sampler={"min_radius": 0.3})
        assert isinstance(spec.sampler_config(), SamplerConfig)
        assert make_spec().sampler_config() is None


class TestShardPlan:
    def test_plan_covers_every_cell_exactly(self):
        spec = make_spec()
        plan = plan_shards(spec)
        assert sum(shard.count for shard in plan) == spec.total_instances
        assert [shard.index for shard in plan] == list(range(len(plan)))
        # 10 rows at shard_size 4 -> 4 + 4 + 2 per cell, contiguous.
        per_cell = {}
        for shard in plan:
            per_cell.setdefault((shard.arm_index, shard.class_index), []).append(shard)
        for shards in per_cell.values():
            assert [s.count for s in shards] == [4, 4, 2]
            assert [s.start for s in shards] == [0, 4, 8]

    def test_shard_ids_are_content_addressed(self):
        plan_a = plan_shards(make_spec())
        plan_b = plan_shards(make_spec(name="renamed"))
        assert [s.shard_id for s in plan_a] == [s.shard_id for s in plan_b]
        plan_c = plan_shards(make_spec(seed=6))
        assert set(s.shard_id for s in plan_a).isdisjoint(s.shard_id for s in plan_c)
        assert len({s.shard_id for s in plan_a}) == len(plan_a)

    def test_instances_independent_of_shard_partition(self):
        """The acceptance contract: 1 shard vs N shards, identical instances."""
        whole = make_spec(shard_size=10)
        split = make_spec(shard_size=3)
        assert [
            instance
            for shard in plan_shards(whole)
            for instance in shard_instances(whole, shard)
        ] == [
            instance
            for shard in plan_shards(split)
            for instance in shard_instances(split, shard)
        ]

    def test_arms_share_the_class_instance_stream(self):
        spec = make_spec(
            arms=(
                CampaignArm(algorithm="almost-universal-compact"),
                CampaignArm(algorithm="almost-universal", label="paper"),
            ),
            shard_size=10,
        )
        plan = plan_shards(spec)
        by_cell = {(s.arm_index, s.class_index): s for s in plan}
        assert shard_instances(spec, by_cell[(0, 0)]) == shard_instances(
            spec, by_cell[(1, 0)]
        )

    def test_ratio_options_resolve_against_instance_r(self):
        spec = make_spec(
            arms=(
                CampaignArm(
                    algorithm="almost-universal-compact",
                    options={"radius_a_ratio": 1.0, "radius_b_ratio": 0.25},
                ),
            ),
            shard_size=10,
        )
        shard = plan_shards(spec)[0]
        instances = shard_instances(spec, shard)
        tasks = shard_tasks(spec, shard, instances)
        for task, instance in zip(tasks, instances):
            assert task.simulator_options["radius_a"] == instance.r
            assert task.simulator_options["radius_b"] == 0.25 * instance.r
            assert "radius_b_ratio" not in task.simulator_options
            assert task.tag == shard.shard_id


class TestSpawnedSeeding:
    def test_children_match_real_spawn(self):
        """Direct construction must equal SeedSequence.spawn's children exactly."""
        spawned = np.random.SeedSequence(5).spawn(8)
        ours = spawn_instance_seeds(5, 8)
        for a, b in zip(spawned, ours):
            assert a.entropy == b.entropy
            assert a.spawn_key == b.spawn_key
            assert a.pool_size == b.pool_size
            assert np.array_equal(
                np.random.default_rng(a).integers(0, 1 << 30, 4),
                np.random.default_rng(b).integers(0, 1 << 30, 4),
            )

    def test_children_are_position_stable(self):
        all_at_once = spawn_instance_seeds(5, 8)
        sliced = spawn_instance_seeds(5, 3, start=2)
        for a, b in zip(all_at_once[2:5], sliced):
            assert a.entropy == b.entropy
            assert a.spawn_key == b.spawn_key

    def test_existing_seedsequence_is_never_mutated(self):
        parent = np.random.SeedSequence(5)
        first = spawn_instance_seeds(parent, 4)
        parent.spawn(3)  # a caller spawning on the side must not shift ours
        second = spawn_instance_seeds(parent, 4)
        assert [c.spawn_key for c in first] == [c.spawn_key for c in second]

    def test_sample_spawned_matches_slicing(self):
        whole = sample_spawned(6, seed=11)
        parts = sample_spawned(2, seed=11) + sample_spawned(4, seed=11, start=2)
        assert whole == parts

    def test_sample_spawned_respects_class(self):
        from repro.core.classification import InstanceClass, classify

        for instance in sample_spawned(4, seed=3, cls=InstanceClass.TYPE_2):
            assert classify(instance) is InstanceClass.TYPE_2

    def test_negative_positions_rejected(self):
        with pytest.raises(ValueError):
            spawn_instance_seeds(0, -1)
        with pytest.raises(ValueError):
            spawn_instance_seeds(0, 1, start=-2)
