"""Tests for the program combinators (rotation, truncation, chunk/wait interleaving)."""

import itertools
import math

import pytest

from repro.motion.instructions import Move, Wait
from repro.motion.localpath import LocalPath
from repro.motion.program import (
    chunked_with_waits,
    concat_programs,
    limit_instructions,
    program_from_callable,
    replay_path,
    rotate_instructions,
    scale_instructions,
    take_local_time,
)


def square_program():
    yield Move(1.0, 0.0)
    yield Move(0.0, 1.0)
    yield Move(-1.0, 0.0)
    yield Move(0.0, -1.0)


def endless_east():
    while True:
        yield Move(1.0, 0.0)
        yield Wait(1.0)


class TestRotateScale:
    def test_rotate_affects_moves_only(self):
        rotated = list(rotate_instructions([Move(1.0, 0.0), Wait(2.0)], math.pi / 2.0))
        assert rotated[0].dx == pytest.approx(0.0, abs=1e-12)
        assert rotated[0].dy == pytest.approx(1.0)
        assert rotated[1] == Wait(2.0)

    def test_rotate_preserves_closure(self):
        path = LocalPath.from_instructions(rotate_instructions(square_program(), 0.7))
        assert path.is_closed(tol=1e-9)

    def test_scale(self):
        scaled = list(scale_instructions([Move(1.0, -2.0), Wait(1.0)], 3.0))
        assert scaled[0] == Move(3.0, -6.0)
        assert scaled[1] == Wait(1.0)


class TestConcatLimit:
    def test_concat(self):
        combined = list(concat_programs(square_program(), [Wait(1.0)]))
        assert len(combined) == 5
        assert combined[-1] == Wait(1.0)

    def test_limit_finite(self):
        assert len(list(limit_instructions(square_program(), 2))) == 2

    def test_limit_infinite_program(self):
        assert len(list(limit_instructions(endless_east(), 10))) == 10

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            list(limit_instructions(square_program(), -1))


class TestTakeLocalTime:
    def test_exact_duration(self):
        path = take_local_time(square_program(), 2.5)
        assert path.total_duration() == pytest.approx(2.5)
        # Two full sides plus half of the third (which runs West).
        assert path.end_displacement() == pytest.approx((0.5, 1.0))

    def test_pads_when_program_ends(self):
        path = take_local_time(square_program(), 10.0)
        assert path.total_duration() == pytest.approx(10.0)
        assert path.is_closed()

    def test_infinite_program_is_consumed_lazily(self):
        path = take_local_time(endless_east(), 5.0)
        assert path.total_duration() == pytest.approx(5.0)

    def test_zero_duration(self):
        assert len(take_local_time(square_program(), 0.0)) == 0

    def test_negative_duration(self):
        with pytest.raises(ValueError):
            take_local_time(square_program(), -1.0)

    def test_consumes_only_what_it_needs(self):
        program = endless_east()
        take_local_time(program, 3.0)
        # The generator must not have been drained far beyond the 3 time units
        # (2 instructions = 2 time units per loop iteration).
        consumed_next = next(program)
        assert isinstance(consumed_next, (Move, Wait))


class TestReplayAndChunks:
    def test_replay_reproduces_path(self):
        original = take_local_time(square_program(), 4.0)
        replayed = LocalPath.from_instructions(replay_path(original))
        assert replayed.end_displacement() == pytest.approx(original.end_displacement())
        assert replayed.total_duration() == pytest.approx(original.total_duration())

    def test_chunked_with_waits_structure(self):
        path = take_local_time(square_program(), 4.0)
        instructions = list(chunked_with_waits(path, chunk_duration=1.0, wait_duration=2.0))
        waits = [i for i in instructions if isinstance(i, Wait) and i.duration == 2.0]
        assert len(waits) == 4  # one wait after each of the four chunks
        # Net displacement is unchanged by the interleaved waits.
        combined = LocalPath.from_instructions(instructions)
        assert combined.end_displacement() == pytest.approx(path.end_displacement())
        assert combined.total_duration() == pytest.approx(path.total_duration() + 4 * 2.0)

    def test_chunked_with_waits_validation(self):
        path = take_local_time(square_program(), 4.0)
        with pytest.raises(ValueError):
            list(chunked_with_waits(path, 1.0, -1.0))

    def test_chunked_zero_wait(self):
        path = take_local_time(square_program(), 4.0)
        instructions = list(chunked_with_waits(path, 1.0, 0.0))
        assert not any(isinstance(i, Wait) and i.duration == 0.0 for i in instructions)


class TestProgramFromCallable:
    def test_lazy_construction(self):
        calls = []

        def factory():
            calls.append(1)
            return square_program()

        program = program_from_callable(factory)
        assert calls == []  # nothing happened yet
        list(itertools.islice(program, 1))
        assert calls == [1]
