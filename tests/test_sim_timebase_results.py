"""Tests for timebases, result objects and the trajectory recorder."""

from fractions import Fraction

import pytest

from repro.core.instance import Instance
from repro.geometry.polyline import Polyline
from repro.motion.compiler import TrajectorySegment
from repro.sim.recorder import TrajectoryRecorder
from repro.sim.results import SimulationResult, TerminationReason
from repro.sim.timebase import ExactTimebase, FloatTimebase, Timebase, get_timebase


class TestTimebases:
    def test_get_timebase_by_name(self):
        assert isinstance(get_timebase("float"), FloatTimebase)
        assert isinstance(get_timebase("exact"), ExactTimebase)
        assert isinstance(get_timebase(None), FloatTimebase)

    def test_get_timebase_passthrough(self):
        timebase = ExactTimebase()
        assert get_timebase(timebase) is timebase

    def test_get_timebase_unknown(self):
        with pytest.raises(ValueError):
            get_timebase("decimal")

    def test_float_operations(self):
        tb = FloatTimebase()
        assert tb.lift(3) == 3.0
        assert tb.add(1.5, 0.25) == 1.75
        assert tb.diff(2.0, 0.5) == 1.5
        assert tb.to_float(2.5) == 2.5

    def test_exact_operations(self):
        tb = ExactTimebase()
        lifted = tb.lift(0.1)
        assert isinstance(lifted, Fraction)
        assert lifted == Fraction(0.1)  # exact value of the float 0.1
        assert tb.add(Fraction(1, 3), 0.5) == Fraction(1, 3) + Fraction(1, 2)
        assert tb.diff(Fraction(5, 2), Fraction(1, 2)) == 2.0

    def test_exact_preserves_huge_offsets(self):
        tb = ExactTimebase()
        huge = tb.lift(2.0**60)
        later = tb.add(huge, 0.25)
        # Float arithmetic would lose the 0.25 entirely (ulp at 2**60 is 256).
        assert tb.diff(later, huge) == 0.25

    def test_float_loses_huge_offsets(self):
        tb = FloatTimebase()
        huge = tb.lift(2.0**60)
        later = tb.add(huge, 0.25)
        assert tb.diff(later, huge) == 0.0

    def test_abstract_interface(self):
        tb = Timebase()
        for call in (lambda: tb.lift(1.0), lambda: tb.add(1.0, 1.0), lambda: tb.diff(1.0, 0.0), lambda: tb.to_float(1.0)):
            with pytest.raises(NotImplementedError):
                call()
        assert tb.compare_key(5.0) == 5.0


class TestRecorder:
    def segment(self, start, end, t0=0.0):
        duration = 1.0
        velocity = ((end[0] - start[0]) / duration, (end[1] - start[1]) / duration)
        return TrajectorySegment(t0, duration, start, velocity)

    def test_records_endpoints(self):
        recorder = TrajectoryRecorder((0.0, 0.0))
        recorder.record_segment(self.segment((0.0, 0.0), (1.0, 0.0)))
        recorder.record_segment(self.segment((1.0, 0.0), (1.0, 1.0)))
        poly = recorder.as_polyline()
        assert isinstance(poly, Polyline)
        assert poly.vertices == ((0.0, 0.0), (1.0, 0.0), (1.0, 1.0))

    def test_skips_stationary_segments(self):
        recorder = TrajectoryRecorder((0.0, 0.0))
        recorder.record_segment(self.segment((0.0, 0.0), (0.0, 0.0)))
        assert recorder.vertex_count == 1

    def test_truncation(self):
        recorder = TrajectoryRecorder((0.0, 0.0), max_vertices=3)
        for k in range(10):
            recorder.record_segment(self.segment((float(k), 0.0), (float(k + 1), 0.0)))
        assert recorder.vertex_count == 3
        assert recorder.truncated

    def test_record_point(self):
        recorder = TrajectoryRecorder((0.0, 0.0))
        recorder.record_point((2.0, 2.0))
        recorder.record_point((2.0, 2.0))
        assert recorder.vertex_count == 2

    def test_min_vertices_validation(self):
        with pytest.raises(ValueError):
            TrajectoryRecorder((0.0, 0.0), max_vertices=1)


class TestSimulationResult:
    def make_result(self, met=True):
        instance = Instance(r=0.5, x=1.0, y=0.0)
        return SimulationResult(
            instance=instance,
            algorithm_name="test",
            met=met,
            termination=TerminationReason.RENDEZVOUS if met else TerminationReason.MAX_TIME,
            meeting_time=2.0 if met else None,
            meeting_point_a=(1.0, 0.0) if met else None,
            meeting_point_b=(1.25, 0.0) if met else None,
            min_distance=0.25 if met else 0.8,
            min_distance_time=2.0,
            simulated_time=2.0,
            segments_a=3,
            segments_b=4,
        )

    def test_meeting_distance(self):
        assert self.make_result().meeting_distance == pytest.approx(0.25)
        assert self.make_result(met=False).meeting_distance is None

    def test_segments_total_and_success(self):
        result = self.make_result()
        assert result.segments_total == 7
        assert result.success is True

    def test_approach_ratio(self):
        assert self.make_result().approach_ratio() == pytest.approx(0.5)

    def test_summary_strings(self):
        assert "rendezvous at" in self.make_result().summary()
        assert "no rendezvous" in self.make_result(met=False).summary()

    def test_as_record_flattens_instance(self):
        record = self.make_result().as_record()
        assert record["instance_r"] == 0.5
        assert record["met"] is True
        assert record["algorithm"] == "test"
