"""Tests for the Move/Wait instruction IR."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.motion.instructions import (
    Move,
    Wait,
    go,
    go_east,
    go_north,
    go_south,
    go_west,
    move_by,
    wait,
)
from repro.util.errors import AlgorithmContractError

finite = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


class TestMove:
    def test_length_and_duration(self):
        move = Move(3.0, 4.0)
        assert move.length == 5.0
        assert move.duration == 5.0  # local speed is one length unit per time unit

    def test_null(self):
        assert Move(0.0, 0.0).is_null()
        assert not Move(0.1, 0.0).is_null()

    def test_reversed(self):
        assert Move(1.0, -2.0).reversed() == Move(-1.0, 2.0)

    def test_rotated_quarter_turn(self):
        rotated = Move(1.0, 0.0).rotated(math.pi / 2.0)
        assert rotated.dx == pytest.approx(0.0, abs=1e-12)
        assert rotated.dy == pytest.approx(1.0)

    def test_scaled(self):
        assert Move(1.0, 2.0).scaled(2.0) == Move(2.0, 4.0)
        with pytest.raises(AlgorithmContractError):
            Move(1.0, 2.0).scaled(-1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(AlgorithmContractError):
            Move(float("nan"), 0.0)
        with pytest.raises(AlgorithmContractError):
            Move(0.0, float("inf"))

    @given(finite, finite, st.floats(-10.0, 10.0))
    def test_rotation_preserves_length(self, dx, dy, alpha):
        assert Move(dx, dy).rotated(alpha).length == pytest.approx(
            Move(dx, dy).length, rel=1e-9, abs=1e-9
        )


class TestWait:
    def test_duration(self):
        assert Wait(2.5).duration == 2.5

    def test_null(self):
        assert Wait(0.0).is_null()

    def test_negative_rejected(self):
        with pytest.raises(AlgorithmContractError):
            Wait(-1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(AlgorithmContractError):
            Wait(float("inf"))


class TestShorthands:
    def test_cardinals(self):
        assert go("E", 2.0) == Move(2.0, 0.0)
        assert go("W", 2.0) == Move(-2.0, 0.0)
        assert go("N", 2.0) == Move(0.0, 2.0)
        assert go("S", 2.0) == Move(0.0, -2.0)

    def test_lowercase_accepted(self):
        assert go("e", 1.0) == go_east(1.0)

    def test_helpers_match_go(self):
        assert go_east(3.0) == go("E", 3.0)
        assert go_west(3.0) == go("W", 3.0)
        assert go_north(3.0) == go("N", 3.0)
        assert go_south(3.0) == go("S", 3.0)

    def test_unknown_direction(self):
        with pytest.raises(AlgorithmContractError):
            go("NE", 1.0)

    def test_negative_distance(self):
        with pytest.raises(AlgorithmContractError):
            go("E", -1.0)

    def test_move_by_and_wait(self):
        assert move_by(1.0, 2.0) == Move(1.0, 2.0)
        assert wait(3.0) == Wait(3.0)
