"""Tests for angle normalization and line-angle helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.angles import (
    TWO_PI,
    angle_between,
    angles_close,
    bisector_direction,
    normalize_angle,
    normalize_signed_angle,
    unoriented_angle_between_lines,
)

angles = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)


class TestNormalization:
    @pytest.mark.parametrize(
        "angle, expected",
        [(0.0, 0.0), (TWO_PI, 0.0), (-math.pi / 2, 3 * math.pi / 2), (5 * math.pi, math.pi)],
    )
    def test_normalize_angle_examples(self, angle, expected):
        assert normalize_angle(angle) == pytest.approx(expected, abs=1e-12)

    @given(angles)
    def test_normalize_angle_range(self, angle):
        result = normalize_angle(angle)
        assert 0.0 <= result < TWO_PI

    @given(angles)
    def test_normalize_preserves_direction(self, angle):
        result = normalize_angle(angle)
        assert math.cos(result) == pytest.approx(math.cos(angle), abs=1e-9)
        assert math.sin(result) == pytest.approx(math.sin(angle), abs=1e-9)

    @given(angles)
    def test_signed_range(self, angle):
        result = normalize_signed_angle(angle)
        assert -math.pi < result <= math.pi


class TestAngleBetween:
    def test_symmetric(self):
        assert angle_between(0.1, 1.3) == pytest.approx(angle_between(1.3, 0.1))

    def test_wraps_around(self):
        assert angle_between(0.05, TWO_PI - 0.05) == pytest.approx(0.1, abs=1e-12)

    @given(angles, angles)
    def test_bounded_by_pi(self, a, b):
        assert 0.0 <= angle_between(a, b) <= math.pi + 1e-12

    def test_angles_close(self):
        assert angles_close(0.0, TWO_PI)
        assert not angles_close(0.0, 0.1)


class TestLineAngles:
    def test_perpendicular_lines(self):
        assert unoriented_angle_between_lines(0.0, math.pi / 2) == pytest.approx(math.pi / 2)

    def test_same_line_opposite_directions(self):
        assert unoriented_angle_between_lines(0.2, 0.2 + math.pi) == pytest.approx(0.0, abs=1e-12)

    @given(angles, angles)
    def test_bounded_by_half_pi(self, a, b):
        assert 0.0 <= unoriented_angle_between_lines(a, b) <= math.pi / 2 + 1e-9


class TestBisector:
    def test_simple_bisector(self):
        assert bisector_direction(0.0, math.pi / 2) == pytest.approx(math.pi / 4)

    def test_bisector_takes_short_arc(self):
        result = bisector_direction(0.1, TWO_PI - 0.1)
        assert result == pytest.approx(0.0, abs=1e-9) or result == pytest.approx(TWO_PI, abs=1e-9)

    @given(angles, angles)
    def test_bisector_equidistant_from_both(self, a, b):
        mid = bisector_direction(a, b)
        assert angle_between(mid, a) == pytest.approx(angle_between(mid, b), abs=1e-6)
