"""Lease protocol unit tests: claim, conflict, heartbeat, stale takeover.

The invariants pinned here are exactly the ones the concurrent-runner tests
in ``test_campaign_executor.py`` rely on end to end: exclusive create means
one winner per shard, release only ever touches your own claim, and a stolen
lease is never clobbered by its previous holder.
"""

import json
import os
import time

import pytest
from hypothesis import assume, given, strategies as st

from profiles import QUICK_SETTINGS
from repro.campaign.leases import DEFAULT_STALE_AFTER, LeaseManager, default_owner_id
from repro.contracts import core as contracts_core
from repro.contracts import get as get_contract


def backdate(path, seconds):
    """Age a lease file by rewinding its mtime (simulates a dead holder).

    A *negative* ``seconds`` pushes the mtime into the future — how a lease
    written by a peer host with a fast clock looks through NFS.
    """
    past = time.time() - seconds
    os.utime(path, (past, past))


class TestClaim:
    def test_acquire_creates_a_lease_file_with_owner(self, tmp_path):
        manager = LeaseManager(str(tmp_path), owner="runner-a")
        assert manager.acquire("shard-1")
        assert manager.held() == ["shard-1"]
        with open(manager.lease_path("shard-1")) as handle:
            payload = json.load(handle)
        assert payload["owner"] == "runner-a"
        assert payload["shard_id"] == "shard-1"

    def test_acquire_is_idempotent_for_the_holder(self, tmp_path):
        manager = LeaseManager(str(tmp_path))
        assert manager.acquire("shard-1")
        assert manager.acquire("shard-1")
        assert manager.conflicts == 0

    def test_fresh_foreign_lease_conflicts(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a")
        b = LeaseManager(str(tmp_path), owner="b")
        assert a.acquire("shard-1")
        assert not b.acquire("shard-1")
        assert b.conflicts == 1
        assert b.takeovers == 0
        assert b.owner_of("shard-1") == "a"

    def test_exactly_one_of_many_claimants_wins(self, tmp_path):
        managers = [LeaseManager(str(tmp_path), owner=f"r{i}") for i in range(8)]
        wins = [manager.acquire("shard-1") for manager in managers]
        assert sum(wins) == 1

    def test_default_owner_ids_are_process_unique(self):
        assert default_owner_id() != default_owner_id()
        assert str(os.getpid()) in default_owner_id()


class TestRelease:
    def test_release_removes_the_file(self, tmp_path):
        manager = LeaseManager(str(tmp_path))
        manager.acquire("shard-1")
        manager.release("shard-1")
        assert not os.path.exists(manager.lease_path("shard-1"))
        assert manager.held() == []

    def test_release_of_an_unheld_lease_is_a_noop(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a")
        b = LeaseManager(str(tmp_path), owner="b")
        a.acquire("shard-1")
        b.release("shard-1")  # b never held it
        assert os.path.exists(a.lease_path("shard-1"))

    def test_release_never_clobbers_a_stolen_lease(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), 10.0)  # a stalled past stale_after
        assert b.acquire("shard-1")  # takeover
        assert b.takeovers == 1
        a.release("shard-1")  # a wakes up and releases...
        # ...but the lease now belongs to b and must survive.
        assert b.owner_of("shard-1") == "b"

    def test_release_all_releases_only_own_claims(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a")
        b = LeaseManager(str(tmp_path), owner="b")
        a.acquire("shard-1")
        b.acquire("shard-2")
        a.release_all()
        assert not os.path.exists(a.lease_path("shard-1"))
        assert os.path.exists(b.lease_path("shard-2"))


class TestStaleTakeover:
    def test_stale_lease_is_taken_over(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), 10.0)
        assert b.acquire("shard-1")
        assert b.takeovers == 1
        assert b.owner_of("shard-1") == "b"

    def test_heartbeat_prevents_takeover(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        a.heartbeat()
        assert not b.acquire("shard-1")
        assert b.conflicts == 1

    def test_heartbeat_drops_stolen_leases(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), 10.0)
        b.acquire("shard-1")
        b.release("shard-1")
        a.heartbeat()  # the file a held is gone: a must not resurrect it
        assert a.held() == []
        assert not os.path.exists(a.lease_path("shard-1"))


class TestClockSkew:
    """Multi-host takeover semantics under clock skew (ROADMAP's NFS concern).

    The protocol reads lease age as ``max(0, now - mtime)``: a lease whose
    mtime sits in *our* future (written by a fast-clocked peer) clamps to age
    0 and is treated as maximally fresh — skew can only ever delay a
    takeover, never cause a premature one.  These tests pin that boundary on
    both sides of ``stale_after``.
    """

    def test_future_mtime_lease_is_never_stolen(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), -3600.0)  # peer clock an hour ahead
        assert not b.acquire("shard-1")
        assert b.conflicts == 1 and b.takeovers == 0
        assert a.lease_path("shard-1") and a.owner_of("shard-1") == "a"

    def test_future_mtime_lease_reads_as_active_not_stale(self, tmp_path):
        manager = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        manager.acquire("shard-1")
        backdate(manager.lease_path("shard-1"), -3600.0)
        assert manager.active_leases() == ["shard-1"]
        assert manager.stale_leases() == []

    def test_takeover_boundary_is_stale_after_in_local_clock(self, tmp_path):
        # Just short of stale_after (a slow-clocked peer that still
        # heartbeats within our window): conflict.  Past it: takeover.
        stale_after = 10.0
        a = LeaseManager(str(tmp_path), owner="a", stale_after=stale_after)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=stale_after)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), stale_after - 2.0)
        assert not b.acquire("shard-1")
        assert b.conflicts == 1
        backdate(a.lease_path("shard-1"), stale_after + 2.0)
        assert b.acquire("shard-1")
        assert b.takeovers == 1
        assert b.owner_of("shard-1") == "b"

    def test_heartbeat_rebases_a_skewed_lease_to_the_local_clock(self, tmp_path):
        # A holder that heartbeats through os.utime() stamps *its* clock; the
        # lease stays fresh no matter how skewed the original mtime was.
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), 10.0)  # would be takeover-eligible
        a.heartbeat()
        assert not b.acquire("shard-1")
        assert b.conflicts == 1

    @QUICK_SETTINGS
    @given(skew=st.floats(-120.0, 120.0))
    def test_takeover_decision_only_depends_on_local_age(self, tmp_path_factory, skew):
        # Property form of the boundary: for any skewed mtime, takeover
        # happens iff the *locally observed* age reaches stale_after.  A
        # margin around the boundary absorbs the wall-clock time between
        # utime and the acquire's stat.
        stale_after = 30.0
        assume(abs(skew - stale_after) > 5.0)
        directory = str(tmp_path_factory.mktemp("leases"))
        a = LeaseManager(directory, owner="a", stale_after=stale_after)
        b = LeaseManager(directory, owner="b", stale_after=stale_after)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), skew)
        took_over = b.acquire("shard-1")
        assert took_over == (skew > stale_after)

    @pytest.mark.skipif(not contracts_core.enabled(),
                        reason="requires REPRO_CONTRACTS=check|raise")
    def test_release_own_only_contract_fires_on_release(self, tmp_path):
        contract = get_contract("lease.release_own_only")
        fired_before = contract.fired
        manager = LeaseManager(str(tmp_path), owner="a")
        manager.acquire("shard-1")
        manager.release("shard-1")
        assert contract.fired == fired_before + 1
        assert contract.violations == 0


class TestInspection:
    def test_stale_and_active_partition_the_directory(self, tmp_path):
        manager = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        manager.acquire("fresh")
        manager.acquire("dead")
        backdate(manager.lease_path("dead"), 10.0)
        assert manager.active_leases() == ["fresh"]
        assert manager.stale_leases() == ["dead"]

    def test_remove_stale_unlinks_only_stale(self, tmp_path):
        manager = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        manager.acquire("fresh")
        manager.acquire("dead")
        backdate(manager.lease_path("dead"), 10.0)
        assert manager.remove_stale() == ["dead"]
        assert os.path.exists(manager.lease_path("fresh"))
        assert not os.path.exists(manager.lease_path("dead"))

    def test_missing_directory_reports_no_leases(self, tmp_path):
        manager = LeaseManager(str(tmp_path / "nope"))
        assert manager.stale_leases() == []
        assert manager.active_leases() == []

    def test_default_stale_after_outlives_a_heartbeat_cycle(self, tmp_path):
        # Holders heartbeat every stale_after / 4; the default must leave a
        # wide margin between heartbeats and takeover eligibility.
        manager = LeaseManager(str(tmp_path))
        assert manager.stale_after == DEFAULT_STALE_AFTER
        assert DEFAULT_STALE_AFTER / 4.0 < DEFAULT_STALE_AFTER
