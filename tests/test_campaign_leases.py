"""Lease protocol unit tests: claim, conflict, heartbeat, stale takeover.

The invariants pinned here are exactly the ones the concurrent-runner tests
in ``test_campaign_executor.py`` rely on end to end: exclusive create means
one winner per shard, release only ever touches your own claim, and a stolen
lease is never clobbered by its previous holder.
"""

import json
import os
import time

from repro.campaign.leases import DEFAULT_STALE_AFTER, LeaseManager, default_owner_id


def backdate(path, seconds):
    """Age a lease file by rewinding its mtime (simulates a dead holder)."""
    past = time.time() - seconds
    os.utime(path, (past, past))


class TestClaim:
    def test_acquire_creates_a_lease_file_with_owner(self, tmp_path):
        manager = LeaseManager(str(tmp_path), owner="runner-a")
        assert manager.acquire("shard-1")
        assert manager.held() == ["shard-1"]
        with open(manager.lease_path("shard-1")) as handle:
            payload = json.load(handle)
        assert payload["owner"] == "runner-a"
        assert payload["shard_id"] == "shard-1"

    def test_acquire_is_idempotent_for_the_holder(self, tmp_path):
        manager = LeaseManager(str(tmp_path))
        assert manager.acquire("shard-1")
        assert manager.acquire("shard-1")
        assert manager.conflicts == 0

    def test_fresh_foreign_lease_conflicts(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a")
        b = LeaseManager(str(tmp_path), owner="b")
        assert a.acquire("shard-1")
        assert not b.acquire("shard-1")
        assert b.conflicts == 1
        assert b.takeovers == 0
        assert b.owner_of("shard-1") == "a"

    def test_exactly_one_of_many_claimants_wins(self, tmp_path):
        managers = [LeaseManager(str(tmp_path), owner=f"r{i}") for i in range(8)]
        wins = [manager.acquire("shard-1") for manager in managers]
        assert sum(wins) == 1

    def test_default_owner_ids_are_process_unique(self):
        assert default_owner_id() != default_owner_id()
        assert str(os.getpid()) in default_owner_id()


class TestRelease:
    def test_release_removes_the_file(self, tmp_path):
        manager = LeaseManager(str(tmp_path))
        manager.acquire("shard-1")
        manager.release("shard-1")
        assert not os.path.exists(manager.lease_path("shard-1"))
        assert manager.held() == []

    def test_release_of_an_unheld_lease_is_a_noop(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a")
        b = LeaseManager(str(tmp_path), owner="b")
        a.acquire("shard-1")
        b.release("shard-1")  # b never held it
        assert os.path.exists(a.lease_path("shard-1"))

    def test_release_never_clobbers_a_stolen_lease(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), 10.0)  # a stalled past stale_after
        assert b.acquire("shard-1")  # takeover
        assert b.takeovers == 1
        a.release("shard-1")  # a wakes up and releases...
        # ...but the lease now belongs to b and must survive.
        assert b.owner_of("shard-1") == "b"

    def test_release_all_releases_only_own_claims(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a")
        b = LeaseManager(str(tmp_path), owner="b")
        a.acquire("shard-1")
        b.acquire("shard-2")
        a.release_all()
        assert not os.path.exists(a.lease_path("shard-1"))
        assert os.path.exists(b.lease_path("shard-2"))


class TestStaleTakeover:
    def test_stale_lease_is_taken_over(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), 10.0)
        assert b.acquire("shard-1")
        assert b.takeovers == 1
        assert b.owner_of("shard-1") == "b"

    def test_heartbeat_prevents_takeover(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        a.heartbeat()
        assert not b.acquire("shard-1")
        assert b.conflicts == 1

    def test_heartbeat_drops_stolen_leases(self, tmp_path):
        a = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        b = LeaseManager(str(tmp_path), owner="b", stale_after=0.5)
        a.acquire("shard-1")
        backdate(a.lease_path("shard-1"), 10.0)
        b.acquire("shard-1")
        b.release("shard-1")
        a.heartbeat()  # the file a held is gone: a must not resurrect it
        assert a.held() == []
        assert not os.path.exists(a.lease_path("shard-1"))


class TestInspection:
    def test_stale_and_active_partition_the_directory(self, tmp_path):
        manager = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        manager.acquire("fresh")
        manager.acquire("dead")
        backdate(manager.lease_path("dead"), 10.0)
        assert manager.active_leases() == ["fresh"]
        assert manager.stale_leases() == ["dead"]

    def test_remove_stale_unlinks_only_stale(self, tmp_path):
        manager = LeaseManager(str(tmp_path), owner="a", stale_after=0.5)
        manager.acquire("fresh")
        manager.acquire("dead")
        backdate(manager.lease_path("dead"), 10.0)
        assert manager.remove_stale() == ["dead"]
        assert os.path.exists(manager.lease_path("fresh"))
        assert not os.path.exists(manager.lease_path("dead"))

    def test_missing_directory_reports_no_leases(self, tmp_path):
        manager = LeaseManager(str(tmp_path / "nope"))
        assert manager.stale_leases() == []
        assert manager.active_leases() == []

    def test_default_stale_after_outlives_a_heartbeat_cycle(self, tmp_path):
        # Holders heartbeat every stale_after / 4; the default must leave a
        # wide margin between heartbeats and takeover eligibility.
        manager = LeaseManager(str(tmp_path))
        assert manager.stale_after == DEFAULT_STALE_AFTER
        assert DEFAULT_STALE_AFTER / 4.0 < DEFAULT_STALE_AFTER
