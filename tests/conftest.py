"""Shared fixtures: representative instances of every class and common helpers.

Also activates the Hypothesis settings profile named by the
``HYPOTHESIS_PROFILE`` environment variable (``quick`` / ``default`` /
``deep``, registered in :mod:`profiles`), so CI legs pick a whole-suite
example budget without editing any test.
"""

import math
import os

import pytest
from hypothesis import settings

import profiles  # noqa: F401  (registers the named profiles)
from repro.analysis.exceptions import make_s1_instance, make_s2_instance
from repro.core.instance import Instance
from repro.sim.engine import RendezvousSimulator

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def trivial_instance() -> Instance:
    """Agents already within the visibility radius."""
    return Instance(r=2.0, x=1.0, y=0.5)


@pytest.fixture
def type1_instance() -> Instance:
    """Synchronous, opposite chiralities, delay above the projection threshold."""
    return Instance(r=0.5, x=2.0, y=1.0, phi=0.0, chi=-1, t=2.0)


@pytest.fixture
def type2_instance() -> Instance:
    """Synchronous, identical frames, delay above the distance threshold."""
    return Instance(r=0.6, x=1.0, y=0.0, phi=0.0, chi=1, t=1.5)


@pytest.fixture
def type3_instance() -> Instance:
    """Different clock rates."""
    return Instance(r=0.5, x=1.0, y=0.0, tau=0.5, v=1.0, t=0.0)


@pytest.fixture
def type4_instance() -> Instance:
    """Synchronous, same chirality, rotated frames."""
    return Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.5)


@pytest.fixture
def s1_instance() -> Instance:
    """Exception set S1 with exactly representable geometry (3-4-5 triangle)."""
    return make_s1_instance(3.0, 4.0, 1.0)


@pytest.fixture
def s2_instance() -> Instance:
    """Exception set S2 with exactly representable geometry (phi = 0)."""
    return make_s2_instance(2.0, 1.0, 0.0, 0.5)


@pytest.fixture
def infeasible_instance() -> Instance:
    """Synchronous, identical frames, delay below the distance threshold."""
    return Instance(r=0.5, x=3.0, y=0.0, phi=0.0, chi=1, t=0.5)


@pytest.fixture
def fast_simulator() -> RendezvousSimulator:
    """A simulator with budgets suited to unit tests."""
    return RendezvousSimulator(max_time=1e7, max_segments=200_000)


@pytest.fixture
def exact_simulator() -> RendezvousSimulator:
    """Exact-timebase simulator for runs that cross huge waits."""
    return RendezvousSimulator(max_time=1e45, max_segments=400_000, timebase="exact")
