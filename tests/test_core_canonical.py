"""Tests for the canonical line (Definition 2.1) and its projections."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.canonical import (
    canonical_geometry,
    canonical_inclination,
    canonical_line,
    projection_distance,
)
from repro.core.instance import Instance

coords = st.floats(-20.0, 20.0, allow_nan=False, allow_infinity=False)
angles = st.floats(0.0, 2.0 * math.pi - 1e-9)
chiralities = st.sampled_from([1, -1])


def make_instance(x, y, phi, chi=1):
    return Instance(r=0.5, x=x, y=y, phi=phi, chi=chi)


class TestCanonicalInclination:
    def test_phi_zero_parallel_to_x_axis(self):
        assert canonical_inclination(make_instance(2.0, 3.0, 0.0)) == 0.0

    def test_phi_half_pi(self):
        assert canonical_inclination(make_instance(2.0, 3.0, math.pi / 2)) == pytest.approx(
            math.pi / 4
        )

    def test_phi_pi_gives_perpendicular(self):
        assert canonical_inclination(make_instance(2.0, 3.0, math.pi)) == pytest.approx(math.pi / 2)

    def test_phi_three_half_pi_mod_pi(self):
        # phi/2 = 3*pi/4, already in [0, pi).
        assert canonical_inclination(make_instance(2.0, 3.0, 3 * math.pi / 2)) == pytest.approx(
            3 * math.pi / 4
        )

    @given(coords, coords, angles)
    def test_inclination_in_range(self, x, y, phi):
        inclination = canonical_inclination(make_instance(x, y, phi))
        assert 0.0 <= inclination < math.pi


class TestCanonicalLine:
    def test_phi_zero_line_is_horizontal_between_agents(self):
        line = canonical_line(make_instance(4.0, 2.0, 0.0))
        assert line.inclination() == pytest.approx(0.0)
        # Equidistant from both origins.
        assert line.distance_to((0.0, 0.0)) == pytest.approx(1.0)
        assert line.distance_to((4.0, 2.0)) == pytest.approx(1.0)

    def test_line_passes_through_midpoint(self):
        inst = make_instance(4.0, 2.0, 1.3)
        assert canonical_line(inst).contains((2.0, 1.0))

    @given(coords, coords, angles, chiralities)
    def test_equidistance_from_both_origins(self, x, y, phi, chi):
        inst = make_instance(x, y, phi, chi)
        line = canonical_line(inst)
        assert line.distance_to((0.0, 0.0)) == pytest.approx(line.distance_to((x, y)), abs=1e-7)

    @given(coords, coords, angles)
    def test_parallel_to_bisectrix(self, x, y, phi):
        inst = make_instance(x, y, phi)
        line = canonical_line(inst)
        expected = (phi / 2.0) % math.pi
        got = line.inclination()
        delta = abs(got - expected) % math.pi
        assert min(delta, math.pi - delta) == pytest.approx(0.0, abs=1e-9)


class TestCanonicalGeometry:
    def test_offsets_are_opposite(self):
        geometry = canonical_geometry(make_instance(4.0, 2.0, 0.7, -1))
        assert geometry.offset_a == pytest.approx(-geometry.offset_b, abs=1e-9)

    def test_agents_on_line(self):
        # With phi = 0 and y = 0 both agents sit on the canonical line.
        geometry = canonical_geometry(make_instance(4.0, 0.0, 0.0, -1))
        assert geometry.agents_on_line
        assert geometry.proj_distance == pytest.approx(4.0)

    def test_projection_distance_formula(self):
        # proj distance = |component of (x, y) along direction phi/2|.
        inst = make_instance(2.0, 2.0, math.pi)  # canonical direction pi/2 (vertical)
        assert projection_distance(inst) == pytest.approx(2.0)

    def test_projection_distance_phi_zero(self):
        assert projection_distance(make_instance(3.0, 4.0, 0.0)) == pytest.approx(3.0)

    def test_project_helper(self):
        geometry = canonical_geometry(make_instance(4.0, 2.0, 0.0))
        assert geometry.project((1.0, 5.0)) == pytest.approx((1.0, 1.0))
        assert geometry.distance_to_line((1.0, 5.0)) == pytest.approx(4.0)

    @given(coords, coords, angles, chiralities)
    def test_proj_distance_never_exceeds_distance(self, x, y, phi, chi):
        inst = make_instance(x, y, phi, chi)
        assert projection_distance(inst) <= inst.initial_distance + 1e-9

    @given(coords, coords, angles, chiralities)
    def test_proj_distance_matches_component_formula(self, x, y, phi, chi):
        inst = make_instance(x, y, phi, chi)
        half = phi / 2.0
        expected = abs(x * math.cos(half) + y * math.sin(half))
        assert projection_distance(inst) == pytest.approx(expected, abs=1e-7)

    @given(coords, coords, angles)
    def test_projections_lie_on_line(self, x, y, phi):
        geometry = canonical_geometry(make_instance(x, y, phi))
        assert geometry.line.contains(geometry.proj_a, tol=1e-6)
        assert geometry.line.contains(geometry.proj_b, tol=1e-6)
