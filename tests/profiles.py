"""Standardized Hypothesis settings profiles for property tests.

Import these instead of sprinkling inline ``@settings(max_examples=...)``:

    from profiles import STANDARD_SETTINGS

    @STANDARD_SETTINGS
    @given(...)
    def test_something(...):
        ...

Tiers (example budgets picked to keep the whole suite inside tier-1 time):

- ``DETERMINISM_SETTINGS``: 500 examples — bit-exactness claims (batch kernel
  vs scalar kernel, engine parity invariants) where a miss means silent wrong
  science, not a flaky test;
- ``STANDARD_SETTINGS``: 100 examples — regular property tests;
- ``SLOW_SETTINGS``: 25 examples — tests that run a full simulation (or
  another expensive subject) per example;
- ``QUICK_SETTINGS``: 20 examples — fast validation tests (rejection paths,
  trivial identities).
"""

from hypothesis import HealthCheck, settings

DETERMINISM_SETTINGS = settings(max_examples=500)
STANDARD_SETTINGS = settings(max_examples=100)
SLOW_SETTINGS = settings(
    max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
)
QUICK_SETTINGS = settings(max_examples=20)
