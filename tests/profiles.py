"""Standardized Hypothesis settings profiles for property tests.

Import these instead of sprinkling inline ``@settings(max_examples=...)``:

    from profiles import STANDARD_SETTINGS

    @STANDARD_SETTINGS
    @given(...)
    def test_something(...):
        ...

Tiers (example budgets picked to keep the whole suite inside tier-1 time):

- ``DETERMINISM_SETTINGS``: 500 examples — bit-exactness claims (batch kernel
  vs scalar kernel, engine parity invariants) where a miss means silent wrong
  science, not a flaky test;
- ``STANDARD_SETTINGS``: 100 examples — regular property tests;
- ``SLOW_SETTINGS``: 25 examples — tests that run a full simulation (or
  another expensive subject) per example;
- ``QUICK_SETTINGS``: 20 examples — fast validation tests (rejection paths,
  trivial identities);
- ``CONTRACT_SETTINGS``: 50 examples — differential contract fuzzing, where
  each example runs both engines (event + vectorized) end to end.

Whole-suite depth is additionally selectable through *registered profiles*
(``settings.register_profile`` + the ``HYPOTHESIS_PROFILE`` environment
variable, loaded by ``tests/conftest.py``): ``quick`` caps every property
test at 10 examples for fast PR legs, ``default`` leaves the per-test tiers
above in charge, and ``deep`` multiplies the budget for nightly contract
passes.  A profile's ``max_examples`` only overrides tests that don't pin
their own, so the tiers stay authoritative except under ``quick``/``deep``
(which are applied last and win by profile semantics for unpinned tests).
"""

from hypothesis import HealthCheck, settings

DETERMINISM_SETTINGS = settings(max_examples=500)
STANDARD_SETTINGS = settings(max_examples=100)
SLOW_SETTINGS = settings(
    max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None
)
QUICK_SETTINGS = settings(max_examples=20)
CONTRACT_SETTINGS = settings(
    max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None
)

settings.register_profile("default", settings())
settings.register_profile(
    "quick",
    settings(max_examples=10, deadline=None),
)
settings.register_profile(
    "deep",
    settings(
        max_examples=1000,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    ),
)
