"""JSON-lines logging: one object per line, structured fields, safe degradation."""

import io
import json
import logging

from repro.util.logging import (
    JsonLinesFormatter,
    get_logger,
    json_log_handler,
    log_event,
)


def capture(configure):
    """Run ``configure(logger)`` against a buffer-backed JSON handler."""
    buffer = io.StringIO()
    logger = logging.getLogger("repro.test-json-logging")
    logger.propagate = False
    handler = json_log_handler(buffer)
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    try:
        configure(logger)
    finally:
        logger.removeHandler(handler)
    return [json.loads(line) for line in buffer.getvalue().splitlines()]


class TestFormatter:
    def test_base_fields(self):
        lines = capture(lambda logger: logger.info("hello %s", "world"))
        (payload,) = lines
        assert payload["message"] == "hello world"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test-json-logging"
        assert payload["ts"].endswith("+00:00")  # UTC, ISO-8601

    def test_extra_fields_become_top_level_keys(self):
        lines = capture(
            lambda logger: log_event(
                logger, logging.INFO, "shard complete",
                digest="abc123", shard_id="s-0007", attempt=2, worker_pid=999,
            )
        )
        (payload,) = lines
        assert payload["digest"] == "abc123"
        assert payload["shard_id"] == "s-0007"
        assert payload["attempt"] == 2
        assert payload["worker_pid"] == 999

    def test_span_and_trace_id_are_first_class_fields(self):
        lines = capture(
            lambda logger: log_event(
                logger, logging.INFO, "job dispatched",
                span="service.dispatch", trace_id="deadbeefcafe",
            )
        )
        (payload,) = lines
        assert payload["span"] == "service.dispatch"
        assert payload["trace_id"] == "deadbeefcafe"

    def test_absent_correlation_fields_are_dropped(self):
        lines = capture(
            lambda logger: log_event(logger, logging.INFO, "plain", digest="d1")
        )
        (payload,) = lines
        assert "span" not in payload
        assert "trace_id" not in payload
        assert payload["digest"] == "d1"

    def test_none_fields_dropped(self):
        lines = capture(
            lambda logger: log_event(
                logger, logging.INFO, "x", digest="d", error=None
            )
        )
        assert "error" not in lines[0]

    def test_non_serializable_degrades_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque thing>"

        lines = capture(
            lambda logger: log_event(logger, logging.INFO, "x", payload=Opaque())
        )
        assert lines[0]["payload"] == "<opaque thing>"

    def test_exception_info_included(self):
        def boom(logger):
            try:
                raise ValueError("kaboom")
            except ValueError:
                logger.exception("failed")

        (payload,) = capture(boom)
        assert "kaboom" in payload["exc_info"]
        assert payload["level"] == "ERROR"

    def test_every_line_is_standalone_json(self):
        lines = capture(
            lambda logger: [
                log_event(logger, logging.INFO, f"event {i}", seq=i)
                for i in range(5)
            ]
        )
        assert [line["seq"] for line in lines] == list(range(5))

    def test_formatter_direct(self):
        record = logging.LogRecord(
            "repro.x", logging.WARNING, __file__, 1, "direct", (), None
        )
        payload = json.loads(JsonLinesFormatter().format(record))
        assert payload["level"] == "WARNING" and payload["message"] == "direct"


class TestGetLogger:
    def test_short_and_qualified_names_resolve_identically(self):
        assert get_logger("sim.engine") is get_logger("repro.sim.engine")

    def test_plain_formatters_still_work_with_log_event(self):
        buffer = io.StringIO()
        logger = logging.getLogger("repro.test-plain-logging")
        logger.propagate = False
        handler = logging.StreamHandler(buffer)
        handler.setFormatter(logging.Formatter("%(levelname)s %(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            log_event(logger, logging.INFO, "plain render", digest="d")
        finally:
            logger.removeHandler(handler)
        assert buffer.getvalue() == "INFO plain render\n"
