"""Differential contract fuzzing: event vs vectorized engines × kernel backends.

Hypothesis draws random small instances and runs them through both engine
families (symmetric and asymmetric), parametrized over every kernel backend
available in the environment.  The assertions are the *declared* engine-parity
contracts (``parity.verdict`` / ``parity.meeting_time`` /
``parity.min_distance`` / ``parity.freeze``) — not hand-rolled comparisons —
so these tests exercise the registry at the same time as verifying the
engines, and a mismatch under ``REPRO_CONTRACTS=raise`` names its invariant.

The closing tests pin the contract machinery itself: the parity checkers
must actually *bite* on fabricated mismatches in every mode.
"""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from profiles import CONTRACT_SETTINGS
from repro.algorithms.registry import get_algorithm
from repro.contracts import (
    ContractViolation,
    check_engine_parity,
    check_outcome_parity,
)
from repro.contracts.core import _override_mode
from repro.core.instance import Instance
from repro.geometry.backends import available_backends
from repro.sim.asymmetric import simulate_asymmetric
from repro.sim.batch import simulate_batch
from repro.sim.engine import RendezvousSimulator, simulate
from repro.sim.scenarios import registered_scenarios, scenarios_for_options

MAX_TIME = 1e4
MAX_SEGMENTS = 10_000

BACKENDS = available_backends()

#: One shared strategy for "random small instance" — bounded geometry so the
#: budgets above resolve quickly, wide enough to hit every window shape
#: (inside-radius starts, long waits, skewed clocks, both chiralities).
instance_params = st.tuples(
    st.floats(0.3, 1.0),     # r
    st.floats(-4.0, 4.0),    # x
    st.floats(-4.0, 4.0),    # y
    st.floats(0.0, 6.28),    # phi
    st.floats(0.3, 3.0),     # tau
    st.floats(0.3, 3.0),     # v
    st.floats(0.0, 3.0),     # t
    st.sampled_from([-1, 1]),  # chi
)


def _build(params):
    r, x, y, phi, tau, v, t, chi = params
    if math.hypot(x, y) <= 1e-6:
        return None  # degenerate co-located start; Instance would reject r<=dist anyway
    return Instance(r=r, x=x, y=y, phi=phi, tau=tau, v=v, t=t, chi=chi)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSymmetricDifferential:
    @CONTRACT_SETTINGS
    @given(params=instance_params)
    def test_event_vs_vectorized(self, backend, params):
        instance = _build(params)
        if instance is None:
            return
        algorithm = get_algorithm("almost-universal-compact")
        event = RendezvousSimulator(
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        ).run(instance, algorithm)
        batch = simulate_batch(
            [instance], algorithm,
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS, backend=backend,
        )[0]
        assert check_engine_parity(event, batch)


@pytest.mark.parametrize("backend", BACKENDS)
class TestAsymmetricDifferential:
    @CONTRACT_SETTINGS
    @given(
        params=instance_params,
        radius_a=st.floats(0.3, 1.5),
        radius_b=st.floats(0.3, 1.5),
    )
    def test_event_vs_vectorized_freeze(self, backend, params, radius_a, radius_b):
        instance = _build(params)
        if instance is None:
            return
        algorithm = get_algorithm("almost-universal-compact")
        kwargs = dict(
            radius_a=radius_a, radius_b=radius_b,
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
        )
        event = simulate_asymmetric(instance, algorithm, engine="event", **kwargs)
        batch = simulate_asymmetric(
            instance, algorithm, engine="vectorized",
            kernel_backend=backend, **kwargs,
        )
        assert check_outcome_parity(event, batch)


@pytest.mark.parametrize(
    "family", registered_scenarios(), ids=lambda family: family.name
)
class TestScenarioFamilyDifferential:
    """Every registered scenario family fuzzes event-vs-vectorized parity.

    The family's own option sampler draws the scenario parameters, so a new
    ``register_scenario`` call is automatically fuzzed here with zero test
    edits — the registry is the coverage list.  Radius-bearing draws route
    through the asymmetric entry point (freeze semantics included); all
    others compare the unified engine directly against the batch engine.
    """

    @CONTRACT_SETTINGS
    @given(params=instance_params, option_seed=st.integers(0, 2**32 - 1))
    def test_event_vs_vectorized(self, family, params, option_seed):
        instance = _build(params)
        if instance is None:
            return
        options = family.sample_options(np.random.default_rng(option_seed))
        assert family in scenarios_for_options(options) or not options
        algorithm = get_algorithm("almost-universal-compact")
        if "radius_a" in options or "radius_b" in options:
            kwargs = dict(options, max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
            event = simulate_asymmetric(instance, algorithm, engine="event", **kwargs)
            batch = simulate_asymmetric(
                instance, algorithm, engine="vectorized", **kwargs
            )
            assert check_outcome_parity(event, batch)
        else:
            event = simulate(
                instance, algorithm,
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS, **options,
            )
            batch = simulate_batch(
                [instance], algorithm,
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS, **options,
            )[0]
            assert check_engine_parity(event, batch)


class TestParityContractsBite:
    """The checkers must reject fabricated mismatches — in every mode."""

    def _pair(self):
        instance = Instance(r=2.0, x=1.0, y=0.5)
        algorithm = get_algorithm("stay-put")
        result = RendezvousSimulator(max_time=10.0).run(instance, algorithm)
        import copy

        other = copy.copy(result)
        return result, other

    def test_raise_mode_raises_on_verdict_mismatch(self):
        result, other = self._pair()
        other.met = not result.met
        with _override_mode("raise"):
            with pytest.raises(ContractViolation, match="parity.verdict"):
                check_engine_parity(result, other)

    def test_check_mode_returns_false_without_raising(self):
        result, other = self._pair()
        other.meeting_time = (result.meeting_time or 0.0) + 1.0
        with _override_mode("check"):
            assert check_engine_parity(result, other) is False

    def test_off_mode_still_returns_the_verdict(self):
        # Explicit checker calls are unconditional: even with checking off,
        # a differential test asserting the return value stays meaningful.
        result, other = self._pair()
        other.min_distance = result.min_distance + 1.0
        with _override_mode("off"):
            assert check_engine_parity(result, other) is False
        assert check_engine_parity(result, result) is True
