"""Tests for LinearCowWalk / PlanarCowWalk (Algorithms 2 and 3)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.cow_walk import (
    LinearCowWalk,
    PlanarCowWalk,
    linear_cow_walk,
    linear_cow_walk_duration,
    linear_cow_walk_segment_count,
    planar_cow_walk,
    planar_cow_walk_duration,
    planar_cow_walk_segment_count,
)
from repro.motion.instructions import Move
from repro.motion.localpath import LocalPath


class TestLinearCowWalk:
    def test_zero_steps_is_empty(self):
        assert list(linear_cow_walk(0)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(linear_cow_walk(-1))

    def test_structure_of_first_step(self):
        moves = list(linear_cow_walk(1))
        assert moves == [Move(2.0, 0.0), Move(-4.0, 0.0), Move(2.0, 0.0)]

    def test_stays_on_x_axis(self):
        assert all(move.dy == 0.0 for move in linear_cow_walk(5))

    @pytest.mark.parametrize("i", [1, 2, 3, 4, 6])
    def test_returns_to_start(self, i):
        path = LocalPath.from_instructions(linear_cow_walk(i))
        assert path.is_closed(tol=1e-9)

    @pytest.mark.parametrize("i", [1, 2, 3, 4, 6])
    def test_duration_and_segment_formulas(self, i):
        path = LocalPath.from_instructions(linear_cow_walk(i))
        assert path.total_duration() == pytest.approx(linear_cow_walk_duration(i))
        assert len(path) == linear_cow_walk_segment_count(i)

    @pytest.mark.parametrize("i", [1, 2, 3, 4])
    def test_reaches_both_extremes(self, i):
        """Step j visits every point of the line within 2**j of the start."""
        path = LocalPath.from_instructions(linear_cow_walk(i))
        xs = [p[0] for p in path.vertices()]
        assert max(xs) == pytest.approx(2.0**i)
        assert min(xs) == pytest.approx(-(2.0**i))

    def test_algorithm_wrapper(self):
        alg = LinearCowWalk(3)
        assert alg.name == "linear-cow-walk(3)"
        assert len(list(alg.program())) == 9


class TestPlanarCowWalk:
    @pytest.mark.parametrize("i", [0, 1, 2])
    def test_returns_to_start(self, i):
        path = LocalPath.from_instructions(planar_cow_walk(i))
        assert path.is_closed(tol=1e-9)

    @pytest.mark.parametrize("i", [1, 2, 3])
    def test_duration_and_segment_formulas(self, i):
        path = LocalPath.from_instructions(planar_cow_walk(i))
        assert path.total_duration() == pytest.approx(planar_cow_walk_duration(i))
        assert len([s for s in path]) == planar_cow_walk_segment_count(i)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(planar_cow_walk(-2))

    @pytest.mark.parametrize("i", [1, 2])
    def test_visits_all_dyadic_rows(self, i):
        """The walk performs a LinearCowWalk from every row k/2**i, |k| <= 2**(2i)."""
        path = LocalPath.from_instructions(planar_cow_walk(i))
        ys = {round(p[1], 9) for p in path.vertices()}
        expected_rows = {round(k / 2.0**i, 9) for k in range(-(2 ** (2 * i)), 2 ** (2 * i) + 1)}
        assert expected_rows.issubset(ys)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(1, 2),
        st.floats(-2.0, 2.0),
        st.floats(-2.0, 2.0),
    )
    def test_claim_3_7_coverage(self, i, px, py):
        """Claim 3.7: the walk passes within 2**-i (locally) of every point
        at distance at most 2**i from the start."""
        if math.hypot(px, py) > 2.0**i:
            return
        path = LocalPath.from_instructions(planar_cow_walk(i))
        polyline = path.as_polyline()
        assert polyline.distance_to_point((px, py)) <= 2.0**-i + 1e-9

    def test_algorithm_wrapper(self):
        alg = PlanarCowWalk(2)
        assert alg.name == "planar-cow-walk(2)"
        assert LocalPath.from_instructions(alg.program()).is_closed()


class TestMemoization:
    def test_cached_walk_equals_generated_walk(self):
        from repro.algorithms.cow_walk import _planar_cow_walk_gen

        assert list(planar_cow_walk(2)) == list(_planar_cow_walk_gen(2))
        # Two consumptions of the memoized walk yield the same objects.
        assert list(planar_cow_walk(2)) == list(planar_cow_walk(2))

    def test_memoized_instructions_are_shared(self):
        from repro.algorithms.cow_walk import _planar_cow_walk_steps

        first = _planar_cow_walk_steps(1)
        second = _planar_cow_walk_steps(1)
        assert first is second

    def test_deep_walks_stay_lazy(self):
        from repro.algorithms.cow_walk import MEMO_SEGMENT_LIMIT

        deep = next(
            i for i in range(1, 30)
            if planar_cow_walk_segment_count(i) > MEMO_SEGMENT_LIMIT
        )
        stream = planar_cow_walk(deep)
        # Generators raise nothing and allocate nothing until consumed.
        assert next(stream) is not None

    def test_validation_still_raises(self):
        with pytest.raises(ValueError):
            linear_cow_walk(-1)
        with pytest.raises(ValueError):
            planar_cow_walk(-1)
