"""Tests for the local-to-absolute trajectory compiler."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.frames import Frame
from repro.core.instance import AgentSpec, Instance
from repro.core.units import AgentUnits
from repro.motion.compiler import compile_trajectory, sleep_segment
from repro.motion.instructions import Move, Wait
from repro.sim.timebase import ExactTimebase


def make_spec(origin=(0.0, 0.0), phi=0.0, chi=1, tau=1.0, v=1.0, wake=0.0, name="X"):
    return AgentSpec(frame=Frame(origin, phi, chi), units=AgentUnits(tau, v, wake), name=name)


class TestSleepSegment:
    def test_no_sleep_when_wake_zero(self):
        assert sleep_segment(make_spec()) is None

    def test_sleep_duration_and_position(self):
        seg = sleep_segment(make_spec(origin=(1.0, 2.0), wake=3.0))
        assert seg.duration == 3.0
        assert seg.start_pos == (1.0, 2.0)
        assert seg.velocity == (0.0, 0.0)
        assert seg.kind == "sleep"


class TestReferenceAgent:
    def test_simple_moves(self):
        spec = make_spec()
        segments = list(compile_trajectory(spec, [Move(2.0, 0.0), Wait(1.0), Move(0.0, 1.0)]))
        assert len(segments) == 3
        move_east, pause, move_north = segments
        assert move_east.start_time == 0.0 and move_east.duration == 2.0
        assert move_east.velocity == pytest.approx((1.0, 0.0))
        assert move_east.end_pos == pytest.approx((2.0, 0.0))
        assert pause.kind == "wait" and pause.duration == 1.0
        assert move_north.start_time == pytest.approx(3.0)
        assert move_north.end_pos == pytest.approx((2.0, 1.0))

    def test_null_instructions_skipped(self):
        segments = list(compile_trajectory(make_spec(), [Move(0.0, 0.0), Wait(0.0)]))
        assert segments == []

    def test_position_at_offset(self):
        (segment,) = compile_trajectory(make_spec(), [Move(4.0, 0.0)])
        assert segment.position_at_offset(1.0) == pytest.approx((1.0, 0.0))
        with pytest.raises(ValueError):
            segment.position_at_offset(10.0)


class TestUnitsAndFrames:
    def test_speed_and_clock_scaling(self):
        # tau = 2, v = 3: one local length unit = 6 absolute units, traversed
        # in 2 absolute time units (at absolute speed 3).
        spec = make_spec(tau=2.0, v=3.0)
        (segment,) = compile_trajectory(spec, [Move(1.0, 0.0)])
        assert segment.duration == pytest.approx(2.0)
        assert segment.end_pos == pytest.approx((6.0, 0.0))
        assert math.hypot(*segment.velocity) == pytest.approx(3.0)

    def test_wait_scaling(self):
        spec = make_spec(tau=2.0, v=3.0)
        (segment,) = compile_trajectory(spec, [Wait(5.0)])
        assert segment.duration == pytest.approx(10.0)

    def test_wake_time_shifts_start(self):
        spec = make_spec(wake=4.0)
        segments = list(compile_trajectory(spec, [Move(1.0, 0.0)]))
        assert segments[0].kind == "sleep"
        assert segments[1].start_time == pytest.approx(4.0)

    def test_rotated_frame(self):
        spec = make_spec(phi=math.pi / 2.0)
        (segment,) = compile_trajectory(spec, [Move(1.0, 0.0)])
        assert segment.end_pos == pytest.approx((0.0, 1.0), abs=1e-12)

    def test_mirrored_frame(self):
        spec = make_spec(chi=-1)
        (segment,) = compile_trajectory(spec, [Move(0.0, 1.0)])
        assert segment.end_pos == pytest.approx((0.0, -1.0))

    def test_agent_b_of_instance(self):
        instance = Instance(r=1.0, x=2.0, y=3.0, phi=math.pi, tau=2.0, v=0.5, t=1.0, chi=1)
        spec = instance.agent_b()
        segments = list(compile_trajectory(spec, [Move(1.0, 0.0)]))
        sleep, move = segments
        assert sleep.duration == 1.0
        assert move.start_time == pytest.approx(1.0)
        # Length unit tau*v = 1, direction rotated by pi.
        assert move.end_pos == pytest.approx((1.0, 3.0), abs=1e-9)
        assert move.duration == pytest.approx(2.0)

    @given(
        st.floats(0.1, 4.0),
        st.floats(0.1, 4.0),
        st.floats(0.0, 2.0 * math.pi - 1e-9),
        st.sampled_from([1, -1]),
        st.lists(
            st.one_of(
                st.tuples(st.floats(-3.0, 3.0), st.floats(-3.0, 3.0)).map(lambda d: Move(*d)),
                st.floats(0.0, 3.0).map(Wait),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_total_duration_matches_units(self, tau, v, phi, chi, instructions):
        """Total absolute duration equals local duration times the clock rate."""
        spec = make_spec(phi=phi, chi=chi, tau=tau, v=v)
        segments = list(compile_trajectory(spec, instructions))
        local_duration = sum(
            instr.duration for instr in instructions if not instr.is_null()
        )
        assert sum(s.duration for s in segments) == pytest.approx(local_duration * tau, rel=1e-9)

    @given(
        st.lists(
            st.tuples(
                # Subnormal displacements carry only a handful of mantissa
                # bits, so the 1e-9 relative tolerance below is not
                # meaningful for them (and such moves are physically
                # meaningless anyway).
                st.floats(-3.0, 3.0, allow_subnormal=False),
                st.floats(-3.0, 3.0, allow_subnormal=False),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_path_length_scales_with_length_unit(self, displacements):
        moves = [Move(dx, dy) for dx, dy in displacements]
        base = list(compile_trajectory(make_spec(), moves))
        scaled = list(compile_trajectory(make_spec(tau=2.0, v=1.5), moves))
        base_length = sum(math.hypot(*s.velocity) * s.duration for s in base)
        scaled_length = sum(math.hypot(*s.velocity) * s.duration for s in scaled)
        assert scaled_length == pytest.approx(base_length * 3.0, rel=1e-9)


class TestExactTimebase:
    def test_exact_timestamps_are_fractions(self):
        spec = make_spec(wake=0.5)
        segments = list(
            compile_trajectory(spec, [Move(1.0, 0.0), Wait(0.25)], timebase=ExactTimebase())
        )
        assert all(isinstance(s.start_time, Fraction) for s in segments)
        assert segments[-1].start_time == Fraction(3, 2)

    def test_exact_accumulation_has_no_drift(self):
        spec = make_spec()
        instructions = [Move(0.1, 0.0)] * 10
        segments = list(compile_trajectory(spec, instructions, timebase=ExactTimebase()))
        # Each duration is Fraction(0.1) exactly; the sum is exact, not 0.9999...
        assert segments[-1].start_time == 9 * Fraction(0.1)


class TestDegenerateMoves:
    def test_subnormal_move_velocity_stays_finite(self):
        """Velocity is disp/duration, not disp * (1/duration): the reciprocal
        of a subnormal duration overflows to inf even though the quotient is
        perfectly representable."""
        d = 2.225073858507203e-309
        [segment] = list(compile_trajectory(make_spec(), [Move(d, d)]))
        assert math.isfinite(segment.velocity[0])
        assert segment.velocity[0] == pytest.approx(math.sqrt(0.5))
        assert segment.velocity[1] == pytest.approx(math.sqrt(0.5))
