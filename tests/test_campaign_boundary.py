"""Boundary-validation audit: campaign entry points reject bad inputs *early*.

Every numeric knob a campaign accepts — spec fields, per-arm simulator
options, orchestrator execution knobs, CLI flags — must fail at construction
time with a clear :class:`CampaignError` naming the offending field, not
hundreds of shards later with a bare numpy ``ValueError`` or an OS error in a
half-written store.  These tests pin that property for each entry point; the
sibling rule (knob validation happens before any directory is touched) is
pinned explicitly for the orchestrator.
"""

import math

import pytest

from repro.campaign import CampaignArm, CampaignError, CampaignSpec
from repro.campaign.orchestrator import run_campaign
from repro.cli import main


def make_spec(**overrides):
    base = dict(
        name="boundary",
        arms=(CampaignArm(algorithm="stay-put"),),
        classes=("type-1",),
        instances_per_cell=4,
        seed=1,
        simulator={"max_time": 100.0},
        shard_size=4,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSpecCountFields:
    @pytest.mark.parametrize("bad", [0, -3, 2.5, True])
    def test_instances_per_cell_must_be_a_positive_int(self, bad):
        with pytest.raises(CampaignError, match="instances_per_cell.*positive integer"):
            make_spec(instances_per_cell=bad)

    @pytest.mark.parametrize("bad", [0, -1, 4.0, True])
    def test_shard_size_must_be_a_positive_int(self, bad):
        # A float shard_size used to survive into plan_shards and fail there
        # with a numpy slicing TypeError; now it names itself.
        with pytest.raises(CampaignError, match="shard_size.*positive integer"):
            make_spec(shard_size=bad)

    @pytest.mark.parametrize("bad", [-1, -(2**40), 0.5, True])
    def test_seed_must_be_a_non_negative_int(self, bad):
        # numpy's SeedSequence only rejects negative entropy once the first
        # shard samples; the spec must refuse upfront instead.
        with pytest.raises(CampaignError, match="seed.*non-negative integer"):
            make_spec(seed=bad)

    def test_zero_seed_is_valid(self):
        assert make_spec(seed=0).seed == 0


class TestSimulatorOptionRanges:
    @pytest.mark.parametrize("bad", [0.0, -5.0, math.inf, "fast"])
    def test_max_time_default_must_be_positive_finite(self, bad):
        with pytest.raises(CampaignError, match="max_time.*campaign defaults"):
            make_spec(simulator={"max_time": bad})

    @pytest.mark.parametrize("key", ["max_segments", "kernel_threads"])
    @pytest.mark.parametrize("bad", [0, -10, 2.5])
    def test_integer_options_must_be_positive_ints(self, key, bad):
        with pytest.raises(CampaignError, match=f"{key}.*positive integer"):
            make_spec(simulator={key: bad})

    def test_radius_slack_must_be_non_negative(self):
        with pytest.raises(CampaignError, match="radius_slack.*non-negative"):
            make_spec(simulator={"radius_slack": -1e-9})
        assert make_spec(simulator={"radius_slack": 0.0}) is not None

    def test_initial_horizon_must_be_positive(self):
        with pytest.raises(CampaignError, match="initial_horizon"):
            make_spec(simulator={"initial_horizon": 0.0})

    def test_bad_arm_override_names_the_arm(self):
        # The engines see campaign defaults merged under the arm's overrides,
        # so the *merged* view is validated and the error names the arm.
        arm = CampaignArm(algorithm="stay-put", label="broken",
                          options={"max_time": -1.0})
        with pytest.raises(CampaignError, match="max_time.*arm 'broken'"):
            make_spec(arms=(arm,))

    def test_bad_campaign_default_fails_even_when_every_arm_overrides_it(self):
        arm = CampaignArm(algorithm="stay-put", options={"max_time": 10.0})
        with pytest.raises(CampaignError, match="campaign defaults"):
            make_spec(arms=(arm,), simulator={"max_time": -1.0})

    @pytest.mark.parametrize("bad", [0.0, -0.25])
    def test_ratio_options_must_be_positive(self, bad):
        with pytest.raises(CampaignError, match="radius_a_ratio"):
            CampaignArm(algorithm="stay-put", options={"radius_a_ratio": bad})

    def test_asymmetric_radii_must_be_positive(self):
        arm = CampaignArm(algorithm="stay-put", options={"radius_a": 0.0})
        with pytest.raises(CampaignError, match="radius_a"):
            make_spec(arms=(arm,))

    def test_unknown_options_pass_through(self):
        # The event fallback takes arbitrary keyword options; range checks
        # only cover the keys the campaign layer understands.
        spec = make_spec(simulator={"max_time": 10.0, "raise_on_budget": False})
        assert spec.simulator["raise_on_budget"] is False

    def test_none_means_engine_default_and_is_accepted(self):
        assert make_spec(simulator={"kernel_threads": None}) is not None


class TestScenarioOptionBoundary:
    """Scenario-owned options validate at the spec boundary via the registry."""

    @pytest.mark.parametrize("options", [
        {"speed_a": 0.0},
        {"speed_b": -2.0},
        {"speed_a": math.inf},
        {"stall_agent": "A"},
        {"stall_agent": "C", "stall_time": 1.0, "stall_duration": 1.0},
        {"stall_agent": "A", "stall_time": -1.0, "stall_duration": 1.0},
        {"stall_agent": "A", "stall_time": 1.0, "stall_duration": 0.0},
        {"stall_agent": "A", "stall_time_range": [5.0, 2.0], "stall_duration": 1.0},
        {"stall_agent": "A", "stall_time": 1.0, "stall_time_range": [0.0, 2.0],
         "stall_duration": 1.0},
    ])
    def test_bad_scenario_defaults_fail_at_spec_construction(self, options):
        with pytest.raises(CampaignError):
            make_spec(simulator=dict({"max_time": 100.0}, **options))

    def test_bad_scenario_arm_override_names_the_arm(self):
        arm = CampaignArm(algorithm="stay-put", label="limping",
                          options={"speed_a": -1.0})
        with pytest.raises(CampaignError, match="arm 'limping'.*speed_a"):
            make_spec(arms=(arm,))

    def test_valid_scenario_options_accepted(self):
        spec = make_spec(simulator={
            "max_time": 100.0, "speed_a": 2.0, "speed_b": 0.5,
            "stall_agent": "B", "stall_time_range": [0.0, 10.0],
            "stall_duration_range": [0.5, 2.0],
        })
        assert spec.simulator["stall_agent"] == "B"

    def test_stall_range_draws_are_partition_independent(self):
        # The derived stall schedule is a pure function of (spec, arm, class,
        # stream position): re-sharding the campaign must not move any draw.
        from repro.campaign.shards import plan_shards, shard_instances, shard_tasks

        def draws(shard_size):
            spec = make_spec(
                instances_per_cell=8, shard_size=shard_size,
                simulator={"max_time": 100.0, "stall_agent": "A",
                           "stall_time_range": [0.0, 10.0],
                           "stall_duration_range": [1.0, 2.0]},
            )
            out = []
            for shard in plan_shards(spec):
                for task in shard_tasks(spec, shard, shard_instances(spec, shard)):
                    options = task.simulator_options
                    assert "stall_time_range" not in options
                    assert 0.0 <= options["stall_time"] <= 10.0
                    assert 1.0 <= options["stall_duration"] <= 2.0
                    out.append((options["stall_time"], options["stall_duration"]))
            return out

        assert draws(8) == draws(3) == draws(1)

    def test_stall_draws_differ_across_positions(self):
        from repro.campaign.shards import plan_shards, shard_instances, shard_tasks

        spec = make_spec(
            instances_per_cell=6, shard_size=6,
            simulator={"max_time": 100.0, "stall_agent": "A",
                       "stall_time_range": [0.0, 10.0],
                       "stall_duration_range": [1.0, 2.0]},
        )
        (shard,) = plan_shards(spec)
        tasks = shard_tasks(spec, shard, shard_instances(spec, shard))
        times = [task.simulator_options["stall_time"] for task in tasks]
        assert len(set(times)) == len(times)


class TestOrchestratorKnobs:
    @pytest.mark.parametrize(
        "knob, bad",
        [
            ("max_shards", 0),
            ("max_shards", -2),
            ("workers", 0),
            ("workers", -1),
            ("workers", True),
            ("shard_timeout", 0.0),
            ("shard_timeout", -5.0),
            ("max_attempts", 0),
            ("max_attempts", None),
            ("lease_timeout", 0.0),
            ("lease_timeout", None),
        ],
    )
    def test_non_positive_knobs_raise_before_touching_the_directory(
        self, tmp_path, knob, bad
    ):
        target = tmp_path / "never-created"
        with pytest.raises(CampaignError, match=knob):
            run_campaign(str(target), make_spec(), **{knob: bad})
        # Validation precedes initialization: a refused run leaves no trace.
        assert not target.exists()

    def test_negative_retry_backoff_is_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="retry_backoff"):
            run_campaign(str(tmp_path / "x"), make_spec(), retry_backoff=-0.5)

    def test_zero_retry_backoff_is_allowed(self, tmp_path):
        # 0 disables the backoff sleep; it is a valid (if aggressive) choice.
        stats = run_campaign(str(tmp_path / "c"), make_spec(), retry_backoff=0.0)
        assert stats.shards_executed > 0


class TestCliBoundary:
    def _run(self, tmp_path, *extra):
        return main([
            "campaign", "run",
            "--campaign-dir", str(tmp_path / "cli-campaign"),
            "--algorithm", "stay-put",
            "--classes", "type-1",
            "--instances-per-cell", "4",
            "--max-time", "100",
            *extra,
        ])

    @pytest.mark.parametrize(
        "flag, value",
        [
            ("--shard-size", "0"),
            ("--seed", "-1"),
            ("--instances-per-cell", "0"),
            ("--max-time", "0"),
            ("--max-segments", "-5"),
            ("--max-shards", "0"),
            ("--workers", "0"),
            ("--max-attempts", "0"),
            ("--lease-timeout", "0"),
        ],
    )
    def test_bad_flags_exit_2_with_a_named_error(self, tmp_path, capsys, flag, value):
        code = self._run(tmp_path, flag, value)
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert flag.lstrip("-").replace("-", "_") in err

    def test_valid_flags_run_the_campaign(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
