"""Pin suite for :func:`repro.sim.engine.window_bounds`.

Window-end clamping used to be implemented twice — once in the symmetric
engine loop, once in the asymmetric one — with subtly different spellings of
the same semantics.  ``window_bounds`` is now the single place it lives, and
these tests pin the exact behaviour both loops relied on: earliest-bound
selection, ``None`` as "unbounded", and the clamp of rounding-negative
durations at zero.
"""

from fractions import Fraction

from repro.sim.engine import window_bounds
from repro.sim.timebase import get_timebase

FLOAT = get_timebase("float")
EXACT = get_timebase("exact")


class TestWindowBounds:
    def test_horizon_binds_when_segments_unbounded(self):
        window_end, window = window_bounds(2.0, None, None, 10.0, FLOAT)
        assert window_end == 10.0
        assert window == 8.0

    def test_earliest_segment_end_binds(self):
        window_end, window = window_bounds(0.0, 3.0, 5.0, 10.0, FLOAT)
        assert window_end == 3.0
        assert window == 3.0
        window_end, window = window_bounds(0.0, 7.0, 4.0, 10.0, FLOAT)
        assert window_end == 4.0
        assert window == 4.0

    def test_one_sided_none_is_unbounded(self):
        window_end, window = window_bounds(1.0, None, 6.0, 10.0, FLOAT)
        assert window_end == 6.0
        assert window == 5.0
        window_end, window = window_bounds(1.0, 6.0, None, 10.0, FLOAT)
        assert window_end == 6.0
        assert window == 5.0

    def test_horizon_beats_later_segment_ends(self):
        window_end, window = window_bounds(0.0, 20.0, 30.0, 10.0, FLOAT)
        assert window_end == 10.0
        assert window == 10.0

    def test_negative_duration_clamps_to_zero(self):
        # A cursor can sit an ulp past the window end after accumulated float
        # advancement; the duration must clamp at zero, never go negative.
        current = 10.0 + 1e-9
        window_end, window = window_bounds(current, None, None, 10.0, FLOAT)
        assert window_end == 10.0
        assert window == 0.0

    def test_zero_length_window_at_boundary(self):
        window_end, window = window_bounds(5.0, 5.0, 9.0, 10.0, FLOAT)
        assert window_end == 5.0
        assert window == 0.0

    def test_exact_timebase_end_stays_exact(self):
        # Window ends stay exact rationals; the duration is a float by the
        # timebase contract (``diff`` returns a representable float).
        current = Fraction(1, 3)
        end_a = Fraction(2, 3)
        horizon = Fraction(10)
        window_end, window = window_bounds(current, end_a, None, horizon, EXACT)
        assert window_end == Fraction(2, 3) and isinstance(window_end, Fraction)
        assert window == float(Fraction(1, 3))

    def test_single_implementation(self):
        # The refactor's point: exactly one window-end clamp in the codebase.
        # The asymmetric module must not grow its own loop again.
        import repro.sim.asymmetric as asymmetric
        import repro.sim.engine as engine

        assert asymmetric.drive_windows is engine.drive_windows
        assert not hasattr(asymmetric, "_freeze")
