"""Smoke tests of the public API surface (the names promised by the README)."""

import importlib
import math

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_subpackages_importable(self):
        for module in (
            "repro.util",
            "repro.geometry",
            "repro.core",
            "repro.motion",
            "repro.sim",
            "repro.algorithms",
            "repro.analysis",
            "repro.parallel",
            "repro.campaign",
            "repro.experiments",
            "repro.viz",
        ):
            importlib.import_module(module)

    def test_readme_quickstart_snippet(self):
        instance = repro.Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2, chi=1, t=0.5)
        assert repro.classify(instance).value == "type-4"
        assert repro.is_feasible(instance)
        result = repro.simulate(instance, repro.dedicated_witness(instance))
        assert result.met and result.meeting_time == pytest.approx(1.0)

    def test_docstring_example(self):
        instance = repro.Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2, chi=1)
        assert repro.simulate(instance, repro.LinearProbe()).met

    def test_asymmetric_entry_point(self):
        instance = repro.Instance(r=0.5, x=3.0, y=0.0, t=2.75)
        outcome = repro.simulate_asymmetric(instance, repro.get_algorithm("stay-put"))
        assert isinstance(outcome, repro.AsymmetricOutcome)

    def test_phase_bound_entry_point(self):
        from repro.algorithms import universal_phase_bound

        instance = repro.Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2, chi=1, t=0.5)
        assert universal_phase_bound(instance) >= 1
