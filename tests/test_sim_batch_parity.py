"""Parity suite: the vectorized batch engine against the event engine.

The batch engine's contract is that ``met``, the meeting time (to 1e-9
relative), the termination reason and the closest approach agree with the
event engine on every float-timebase run — across all sampler classes and a
spread of algorithms (universal and dedicated, finite and infinite,
fast-meeting and budget-limited).  These tests are the ground truth that lets
every campaign switch to the vectorized path.
"""

import math

import pytest

from profiles import SLOW_SETTINGS
from hypothesis import given, strategies as st

from repro.algorithms.registry import get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.contracts import check_engine_parity
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.parallel.runner import BatchRunner, BatchTask, run_batch
from repro.sim.batch import simulate_batch
from repro.sim.engine import RendezvousSimulator, simulate
from repro.sim.results import TerminationReason
from repro.util.errors import KnowledgeError, SimulationBudgetExceeded

MAX_TIME = 1e5
MAX_SEGMENTS = 30_000

ALL_CLASSES = (
    InstanceClass.TRIVIAL,
    InstanceClass.TYPE_1,
    InstanceClass.TYPE_2,
    InstanceClass.TYPE_3,
    InstanceClass.TYPE_4,
    InstanceClass.S1_BOUNDARY,
    InstanceClass.S2_BOUNDARY,
    InstanceClass.INFEASIBLE,
)

#: Universal + dedicated algorithms covering finite programs (stay-put),
#: infinite enumeration (almost-universal, cgkk), long waits (latecomers,
#: wait-and-sweep) and per-instance knowledge (dedicated).
PARITY_ALGORITHMS = (
    "almost-universal-compact",
    "stay-put",
    "cgkk",
    "wait-and-sweep",
    "dedicated",
)


def assert_results_match(event, batch, *, rel=1e-9):
    # Delegates to the declared parity contracts (parity.verdict,
    # parity.meeting_time, parity.min_distance) so these tests both verify
    # and exercise the registry; under REPRO_CONTRACTS=raise a mismatch
    # surfaces as a ContractViolation naming the violated invariant.
    # min_distance_time is deliberately NOT part of the contract: periodic
    # programs attain near-equal minima in many windows, and ulp-level
    # differences between the engines' accumulated positions legitimately
    # pick different (equally minimal) windows.
    __tracebackhide__ = True
    assert check_engine_parity(event, batch, rel=rel)


class TestEngineParityAcrossClasses:
    @pytest.mark.parametrize("algorithm_name", PARITY_ALGORITHMS)
    def test_all_sampler_classes(self, algorithm_name):
        sampler = InstanceSampler(seed=1234)
        simulator = RendezvousSimulator(
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS, radius_slack=1e-9
        )
        for cls in ALL_CLASSES:
            instances = sampler.batch_of_class(cls, 3)
            algorithm = get_algorithm(algorithm_name)
            try:
                event_results = [simulator.run(i, algorithm) for i in instances]
            except KnowledgeError:
                continue  # dedicated witness not applicable to this class
            batch_results = simulate_batch(
                instances,
                get_algorithm(algorithm_name),
                max_time=MAX_TIME,
                max_segments=MAX_SEGMENTS,
                radius_slack=1e-9,
            )
            for event, batch in zip(event_results, batch_results):
                assert_results_match(event, batch)

    def test_ulp_short_table_coverage_is_not_a_budget_stop(self):
        # Regression: with clock rate tau=0.6 the compiled table's end time
        # maps back through horizon/tau and lands one ulp below the 243.0
        # horizon (242.99999999999997).  The RoundEntry coverage safety net
        # used a strict `end_time < horizon` and misread the fully-covering
        # table as truncated by the per-agent cap, terminating the batch run
        # with a spurious max-segments verdict while the event engine went on
        # to the real meeting near t=425.
        instance = Instance(r=0.5, x=0.0, y=3.0, phi=0.0, tau=0.6,
                            v=0.5, t=0.0, chi=-1)
        algorithm = get_algorithm("almost-universal-compact")
        event = RendezvousSimulator(max_time=1e4, max_segments=10_000).run(
            instance, algorithm
        )
        batch = simulate_batch(
            [instance], algorithm, max_time=1e4, max_segments=10_000
        )[0]
        assert event.met and batch.met
        assert batch.termination == TerminationReason.RENDEZVOUS
        assert_results_match(event, batch)

    def test_results_are_in_input_order(self):
        sampler = InstanceSampler(seed=9)
        instances = sampler.batch_of_class(InstanceClass.TYPE_4, 5)
        results = simulate_batch(instances, get_algorithm("almost-universal-compact"),
                                 max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
        assert [r.instance for r in results] == instances

    def test_horizon_schedule_does_not_change_results(self):
        # The adaptive horizon is a performance knob; forcing a tiny or a
        # huge starting horizon must produce identical outcomes.
        sampler = InstanceSampler(seed=21)
        instances = sampler.batch_of_class(InstanceClass.TYPE_3, 4)
        algorithm = "almost-universal-compact"
        reference = simulate_batch(instances, get_algorithm(algorithm),
                                   max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
        for horizon in (1.0, 97.0, MAX_TIME):
            again = simulate_batch(
                instances, get_algorithm(algorithm),
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
                initial_horizon=horizon,
            )
            for ref, res in zip(reference, again):
                assert res.met == ref.met
                assert res.termination == ref.termination
                assert res.meeting_time == ref.meeting_time
                assert res.min_distance == pytest.approx(ref.min_distance, rel=1e-12)

    @SLOW_SETTINGS
    @given(
        st.floats(0.3, 1.0),     # r
        st.floats(-4.0, 4.0),    # x
        st.floats(-4.0, 4.0),    # y
        st.floats(0.0, 6.28),    # phi
        st.floats(0.3, 3.0),     # tau
        st.floats(0.3, 3.0),     # v
        st.floats(0.0, 3.0),     # t
        st.sampled_from([-1, 1]),
    )
    def test_property_parity_universal(self, r, x, y, phi, tau, v, t, chi):
        if math.hypot(x, y) <= 1e-6:
            return
        instance = Instance(r=r, x=x, y=y, phi=phi, tau=tau, v=v, t=t, chi=chi)
        event = RendezvousSimulator(max_time=1e4, max_segments=10_000).run(
            instance, get_algorithm("almost-universal-compact")
        )
        batch = simulate_batch(
            [instance], get_algorithm("almost-universal-compact"),
            max_time=1e4, max_segments=10_000,
        )[0]
        assert_results_match(event, batch)


class TestEngineSelector:
    def test_simulate_engine_vectorized(self, type4_instance):
        event = simulate(type4_instance, get_algorithm("almost-universal-compact"),
                         max_time=MAX_TIME, timebase="float")
        vectorized = simulate(type4_instance, get_algorithm("almost-universal-compact"),
                              max_time=MAX_TIME, timebase="float", engine="vectorized")
        assert_results_match(event, vectorized)

    def test_unknown_engine_rejected(self, type4_instance):
        with pytest.raises(ValueError):
            simulate(type4_instance, get_algorithm("stay-put"), engine="warp")

    def test_vectorized_requires_float_timebase(self, type4_instance):
        with pytest.raises(ValueError):
            simulate(type4_instance, get_algorithm("stay-put"),
                     timebase="exact", engine="vectorized")

    def test_vectorized_rejects_recording(self, type4_instance):
        with pytest.raises(ValueError):
            simulate(type4_instance, get_algorithm("stay-put"), timebase="float",
                     record_trajectories=True, engine="vectorized")

    def test_vectorized_raise_on_budget(self, infeasible_instance):
        with pytest.raises(SimulationBudgetExceeded):
            simulate(infeasible_instance, get_algorithm("almost-universal-compact"),
                     max_time=50.0, timebase="float", engine="vectorized",
                     raise_on_budget=True)


class TestTrackMinDistance:
    def test_flag_skips_bookkeeping_but_keeps_verdict(self):
        sampler = InstanceSampler(seed=5)
        instances = sampler.batch_of_class(InstanceClass.TYPE_1, 4)
        tracked = simulate_batch(instances, get_algorithm("almost-universal-compact"),
                                 max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
        untracked = simulate_batch(instances, get_algorithm("almost-universal-compact"),
                                   max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
                                   track_min_distance=False)
        for a, b in zip(tracked, untracked):
            assert a.met == b.met
            assert a.meeting_time == b.meeting_time
            assert a.termination == b.termination
            assert math.isinf(b.min_distance) and b.min_distance_time is None

    def test_event_engine_flag(self, infeasible_instance):
        result = RendezvousSimulator(
            max_time=100.0, track_min_distance=False
        ).run(infeasible_instance, get_algorithm("stay-put"))
        assert not result.met
        assert math.isinf(result.min_distance)


class TestBatchRunnerVectorized:
    def test_auto_engine_matches_event_engine(self):
        sampler = InstanceSampler(seed=11)
        instances = sampler.batch_of_class(InstanceClass.TYPE_2, 6)
        vectorized = run_batch(instances, "almost-universal-compact",
                               max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
        event = run_batch(instances, "almost-universal-compact", engine="event",
                          max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
        assert len(vectorized) == len(event) == 6
        for a, b in zip(vectorized, event):
            assert a["met"] == b["met"]
            assert a["termination"] == b["termination"]
            assert a["meeting_time"] == pytest.approx(b["meeting_time"], rel=1e-9)

    def test_exact_timebase_falls_back_to_event(self):
        tasks = [
            BatchTask.make(Instance(r=2.0, x=1.0, y=0.0), "stay-put",
                           max_time=10.0, timebase="exact")
        ]
        records = BatchRunner(processes=1).run(tasks)
        assert records[0]["met"] and records[0]["timebase"] == "exact"

    def test_mixed_batch_preserves_order(self):
        instances = [Instance(r=2.0, x=float(k % 3 + 1) * 0.1, y=0.0) for k in range(9)]
        tasks = []
        for k, instance in enumerate(instances):
            options = {"max_time": 10.0}
            if k % 2:
                options["timebase"] = "exact"  # event fallback
            tasks.append(BatchTask.make(instance, "stay-put", tag=str(k), **options))
        records = BatchRunner(processes=1).run(tasks)
        assert [rec["tag"] for rec in records] == [str(k) for k in range(9)]
        assert [rec["instance_x"] for rec in records] == [i.x for i in instances]

    def test_strict_vectorized_rejects_incompatible_tasks(self):
        task = BatchTask.make(Instance(r=2.0, x=1.0, y=0.0), "stay-put",
                              record_trajectories=True)
        with pytest.raises(ValueError):
            BatchRunner(engine="vectorized").run([task])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(engine="warp").run([])


class TestTerminationReasons:
    def test_programs_finished(self):
        instance = Instance(r=0.5, x=3.0, y=0.0, t=0.0)
        result = simulate_batch([instance], get_algorithm("stay-put"), max_time=100.0)[0]
        assert not result.met
        assert result.termination == TerminationReason.PROGRAMS_FINISHED

    def test_max_time(self):
        instance = Instance(r=0.25, x=50.0, y=0.0, t=0.1)
        result = simulate_batch(
            [instance], get_algorithm("almost-universal-compact"), max_time=20.0
        )[0]
        assert not result.met
        assert result.termination == TerminationReason.MAX_TIME
        assert result.simulated_time == 20.0

    def test_max_segments_matches_event_engine(self):
        instance = Instance(r=0.25, x=50.0, y=0.0, t=0.1)
        event = RendezvousSimulator(max_time=1e9, max_segments=500).run(
            instance, get_algorithm("almost-universal-compact")
        )
        batch = simulate_batch(
            [instance], get_algorithm("almost-universal-compact"),
            max_time=1e9, max_segments=500,
        )[0]
        assert event.termination == TerminationReason.MAX_SEGMENTS
        assert batch.termination == TerminationReason.MAX_SEGMENTS
        assert batch.simulated_time == pytest.approx(event.simulated_time, rel=1e-9)

    def test_empty_batch(self):
        assert simulate_batch([], get_algorithm("stay-put")) == []

    def test_invalid_parameters(self):
        instance = Instance(r=0.5, x=1.0, y=0.0)
        algorithm = get_algorithm("stay-put")
        with pytest.raises(ValueError):
            simulate_batch([instance], algorithm, max_time=math.inf)
        with pytest.raises(ValueError):
            simulate_batch([instance], algorithm, max_segments=0)
        with pytest.raises(ValueError):
            simulate_batch([instance], algorithm, radius_slack=-1.0)
        with pytest.raises(ValueError):
            simulate_batch([instance], algorithm, initial_horizon=0.0)
