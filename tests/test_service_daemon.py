"""The daemon lifecycle: recover -> ready -> serve -> drain.

The acceptance test of the service layer lives here: a daemon session is cut
down mid-campaign, a fresh session replays the journal, repairs the store and
resumes — and the result is byte-identical to an uninterrupted run with zero
recomputed shards (the ``service.recover_resume_identity`` contract, checked
through :func:`repro.contracts.invariants.check_recovery_identity`).
"""

import json
import os
import threading
import time
import urllib.request

import pytest

from repro.campaign import CampaignArm, CampaignSpec, CampaignStore, run_campaign
from repro.contracts.invariants import check_recovery_identity
from repro.service import DAEMON_FILE, ServiceDaemon, ServiceError, read_daemon_file


def make_spec(**overrides):
    base = dict(
        name="daemon-unit",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1",),
        instances_per_cell=6,
        seed=17,
        simulator={"max_time": 1e5, "max_segments": 20_000},
        shard_size=2,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def wait_for(predicate, timeout=120, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def daemon(tmp_path):
    instance = ServiceDaemon(tmp_path)
    yield instance
    instance.stop(timeout=60)


class TestLifecycle:
    def test_start_publishes_daemon_file_and_goes_ready(self, tmp_path, daemon):
        assert not daemon.is_ready()
        assert daemon.not_ready_reason() == "recovering"
        daemon.start()
        assert daemon.is_ready()
        info = read_daemon_file(tmp_path)
        assert info["pid"] == os.getpid()
        assert info["port"] == daemon.port
        with urllib.request.urlopen(
            f"http://127.0.0.1:{daemon.port}/readyz", timeout=10
        ) as response:
            assert response.status == 200

    def test_double_start_refused(self, daemon):
        daemon.start()
        with pytest.raises(ServiceError, match="already started"):
            daemon.start()

    def test_drain_journals_clean_shutdown_and_removes_daemon_file(
        self, tmp_path, daemon
    ):
        daemon.start()
        daemon.stop()
        assert daemon.not_ready_reason() == "draining"
        assert not daemon.is_ready()
        assert read_daemon_file(tmp_path) is None
        assert daemon.queue.clean_shutdown is True
        # Idempotent: a second stop (the fixture's) is a no-op.
        daemon.stop()

    def test_submit_refused_while_not_ready_but_dedup_answered(self, tmp_path):
        daemon = ServiceDaemon(tmp_path)
        spec = make_spec()
        from repro.service import NotReady

        with pytest.raises(NotReady, match="recovering"):
            daemon.submit(spec)
        # Journal the job out of band, then ask again: dedup is read-only
        # and allowed even when not ready.
        daemon.queue.submit(spec)
        job, created = daemon.submit(spec)
        assert not created and job.digest == spec.digest()

    def test_submitted_job_runs_to_completion(self, tmp_path, daemon):
        daemon.start()
        job, created = daemon.submit(make_spec())
        assert created
        assert wait_for(
            lambda: daemon.queue.job(job.digest).state == "complete"
        ), daemon.queue.job(job.digest).as_dict()
        status = daemon.campaign_status(job.digest)
        assert status["campaign"]["shards_complete"] == status["campaign"]["shards_total"]
        report = daemon.campaign_report(job.digest)
        assert report["rows_stored"] == report["rows_total"] == 6
        assert daemon.campaign_status("no-such-digest") is None
        assert daemon.campaign_report("no-such-digest") is None

    def test_metrics_aggregate_queue_scheduler_and_run_stats(self, tmp_path, daemon):
        before = daemon.metrics()
        assert before["queue"]["jobs_total"] == 0
        assert before["queue"]["depth"] == 0
        assert before["shards"]["shards_per_second"] is None
        daemon.start()
        job, _ = daemon.submit(make_spec())
        assert wait_for(lambda: daemon.queue.job(job.digest).state == "complete")
        metrics = daemon.metrics()
        assert metrics["ready"] is True
        assert metrics["queue"]["jobs_by_state"] == {"complete": 1}
        assert metrics["queue"]["depth"] == 0
        assert metrics["queue"]["attempts_total"] == 1
        assert metrics["queue"]["torn_lines"] == 0
        assert metrics["scheduler"]["jobs_completed"] == 1
        assert metrics["scheduler"]["jobs_quarantined"] == 0
        # 6 instances / shard_size 2 = 3 shards, each attempted exactly once.
        assert metrics["shards"]["shards_executed"] == 3
        assert metrics["shards"]["shard_attempts"] == 3
        assert metrics["shards"]["shards_retried"] == 0
        assert metrics["shards"]["rows_computed"] == 6
        assert metrics["shards"]["shards_per_second"] > 0

    def test_session_shard_window_resets_on_restart(self, tmp_path, daemon):
        daemon.start()
        job, _ = daemon.submit(make_spec())
        assert wait_for(lambda: daemon.queue.job(job.digest).state == "complete")
        metrics = daemon.metrics()
        # First session: this scheduler executed everything, so the
        # since-startup window matches the lifetime totals.
        assert metrics["shards_session"]["shards_executed"] == 3
        assert metrics["shards_session"]["rows_computed"] == 6
        assert metrics["shards_session"]["shards_per_second"] > 0
        daemon.stop(timeout=60)

        successor = ServiceDaemon(tmp_path)
        try:
            successor.start()
            assert wait_for(successor.is_ready)
            fresh = successor.metrics()
            # Lifetime totals replay from the journal; the session window
            # starts empty — the distinction the two keys exist for.
            assert fresh["shards"]["shards_executed"] == 3
            assert fresh["shards_session"]["shards_executed"] == 0
            assert fresh["shards_session"]["shards_per_second"] is None
        finally:
            successor.stop(timeout=60)

    def test_metrics_served_over_http(self, tmp_path, daemon):
        daemon.start()
        with urllib.request.urlopen(
            f"http://127.0.0.1:{daemon.port}/metrics", timeout=10
        ) as response:
            payload = json.loads(response.read())
        assert payload["ready"] is True
        assert payload["queue"]["depth"] == 0

    def test_status_before_store_exists(self, tmp_path):
        daemon = ServiceDaemon(tmp_path)
        job, _ = daemon.queue.submit(make_spec())
        status = daemon.campaign_status(job.digest)
        assert status["job"]["state"] == "submitted"
        assert status["campaign"] is None
        assert daemon.campaign_report(job.digest)["cells"] == []


class TestRecovery:
    def _interrupt_mid_campaign(self, service_dir, spec):
        """Session one: start the job, stop the daemon mid-run (hard enough
        that the job is still `running` in the journal)."""
        ran = threading.Event()

        def observed(shard):
            ran.set()
            time.sleep(0.05)

        daemon = ServiceDaemon(
            service_dir, campaign_options={"shard_hook": observed}
        )
        daemon.start()
        job, _ = daemon.submit(spec)
        assert ran.wait(timeout=120)
        daemon.stop(timeout=60)
        return job

    def test_recover_then_resume_is_byte_identical(self, tmp_path):
        spec = make_spec(instances_per_cell=10, shard_size=2)
        service_dir = tmp_path / "service"
        job = self._interrupt_mid_campaign(service_dir, spec)

        queue_state = ServiceDaemon(service_dir).queue.job(job.digest)
        assert queue_state.state == "running"  # the crash-orphan signal

        # Session two: startup recovery repairs the store, the scheduler
        # resumes, and the job completes.
        daemon = ServiceDaemon(service_dir)
        daemon.start()
        try:
            assert daemon.queue.clean_shutdown is False  # start journaled
            assert wait_for(
                lambda: daemon.queue.job(job.digest).state == "complete"
            ), daemon.queue.job(job.digest).as_dict()
            stats = daemon.queue.job(job.digest).stats
            recovered = CampaignStore(
                daemon.queue.store_path(job.digest)
            ).export_columns()
        finally:
            daemon.stop(timeout=60)

        # Reference: the same spec run uninterrupted.
        reference_dir = tmp_path / "reference"
        run_campaign(str(reference_dir), spec)
        reference = CampaignStore(str(reference_dir)).export_columns()

        assert check_recovery_identity(
            reference, recovered, rows_recomputed=stats["rows_recomputed"]
        )

    def test_recover_skips_jobs_without_stores(self, tmp_path):
        daemon = ServiceDaemon(tmp_path)
        job, _ = daemon.queue.submit(make_spec())
        daemon.queue.mark_running(job.digest)  # crashed before initialize
        fresh = ServiceDaemon(tmp_path)
        assert fresh.recover() == []

    def test_recover_repairs_orphaned_shard_data(self, tmp_path):
        # A committed store with one orphaned npz (crash between the data
        # replace and the manifest append) under a `running` job.
        daemon = ServiceDaemon(tmp_path)
        job, _ = daemon.queue.submit(make_spec())
        daemon.queue.mark_running(job.digest)
        store_dir = daemon.queue.store_path(job.digest)
        run_campaign(store_dir, make_spec(), max_shards=1)
        store = CampaignStore(store_dir)
        orphan = os.path.join(store.directory, store.SHARD_DIR, "deadbeef.npz")
        with open(orphan, "wb") as handle:
            handle.write(b"half-written")

        fresh = ServiceDaemon(tmp_path)
        assert fresh.recover() == [job.digest]
        assert not os.path.exists(orphan)
        assert store.doctor()["clean"]


class TestDaemonFile:
    def test_read_daemon_file_absent_or_corrupt(self, tmp_path):
        assert read_daemon_file(tmp_path) is None
        (tmp_path / DAEMON_FILE).write_text("{torn")
        assert read_daemon_file(tmp_path) is None
        (tmp_path / DAEMON_FILE).write_text(json.dumps([1]))
        assert read_daemon_file(tmp_path) is None
