"""Property tests pinning the numpy batch kernels to the scalar kernels.

The batch kernels are the arithmetic core of the vectorized engine; every
element of a batched call must agree with the scalar function the event
engine uses, or the two engines silently diverge.  Strategies stack several
window problems per example so the segmented layout (not just n=1) is
exercised.
"""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from profiles import DETERMINISM_SETTINGS, QUICK_SETTINGS
from repro.geometry.closest_approach import (
    closest_approach_batch,
    closest_approach_moving_points,
    first_hit_and_closest_approach,
    first_time_within,
    first_time_within_batch,
    fused_window_batch,
)

coords = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)
speeds = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)

window_problems = st.lists(
    st.tuples(
        st.tuples(coords, coords),  # pos_a
        st.tuples(speeds, speeds),  # vel_a
        st.tuples(coords, coords),  # pos_b
        st.tuples(speeds, speeds),  # vel_b
        st.floats(0.0, 5.0),        # radius
        st.floats(0.0, 20.0),       # duration
    ),
    min_size=1,
    max_size=8,
)


def _stack(problems):
    pos_a = np.array([p[0] for p in problems])
    vel_a = np.array([p[1] for p in problems])
    pos_b = np.array([p[2] for p in problems])
    vel_b = np.array([p[3] for p in problems])
    radius = np.array([p[4] for p in problems])
    durations = np.array([p[5] for p in problems])
    return pos_a, vel_a, pos_b, vel_b, radius, durations


class TestFirstTimeWithinBatch:
    @DETERMINISM_SETTINGS
    @given(window_problems)
    def test_matches_scalar_elementwise(self, problems):
        pos_a, vel_a, pos_b, vel_b, radius, durations = _stack(problems)
        hits = first_time_within_batch(pos_a, vel_a, pos_b, vel_b, radius, durations)
        for k, problem in enumerate(problems):
            scalar = first_time_within(*problem)
            if scalar is None:
                assert math.isnan(hits[k])
            else:
                assert hits[k] == scalar  # identical arithmetic, identical bits

    def test_scalar_radius_broadcasts(self):
        hits = first_time_within_batch(
            [(0.0, 0.0), (0.0, 0.0)],
            [(0.0, 0.0), (0.0, 0.0)],
            [(10.0, 0.0), (3.0, 0.0)],
            [(-1.0, 0.0), (0.0, 0.0)],
            1.0,
            [100.0, 100.0],
        )
        assert hits[0] == pytest.approx(9.0)
        assert math.isnan(hits[1])


class TestClosestApproachBatch:
    @DETERMINISM_SETTINGS
    @given(window_problems)
    def test_matches_scalar_elementwise(self, problems):
        pos_a, vel_a, pos_b, vel_b, _, durations = _stack(problems)
        min_distance, t_star = closest_approach_batch(
            pos_a, vel_a, pos_b, vel_b, durations
        )
        for k, (pa, va, pb, vb, _r, duration) in enumerate(problems):
            scalar = closest_approach_moving_points(pa, va, pb, vb, duration)
            # math.hypot (correctly rounded) and np.hypot (libm) may differ
            # in the last ulp; everything else is identical arithmetic.
            assert min_distance[k] == pytest.approx(scalar.min_distance, rel=1e-12, abs=1e-12)
            assert t_star[k] == scalar.time_offset


class TestFusedWindowBatch:
    @DETERMINISM_SETTINGS
    @given(window_problems)
    def test_matches_fused_scalar_kernel(self, problems):
        pos_a, vel_a, pos_b, vel_b, radius, durations = _stack(problems)
        rel = pos_b - pos_a
        rel_vel = vel_b - vel_a
        hit, min_distance, t_star = fused_window_batch(
            rel[:, 0], rel[:, 1], rel_vel[:, 0], rel_vel[:, 1], radius, durations
        )
        for k, (pa, va, pb, vb, r, duration) in enumerate(problems):
            scalar_hit, scalar_approach = first_hit_and_closest_approach(
                pa, va, pb, vb, r, duration
            )
            if scalar_hit is None:
                assert math.isnan(hit[k])
            else:
                assert hit[k] == scalar_hit
            assert min_distance[k] == pytest.approx(
                scalar_approach.min_distance, rel=1e-12, abs=1e-12
            )
            assert t_star[k] == scalar_approach.time_offset

    @QUICK_SETTINGS
    @given(window_problems)
    def test_track_closest_false_skips_bookkeeping(self, problems):
        pos_a, vel_a, pos_b, vel_b, radius, durations = _stack(problems)
        rel = pos_b - pos_a
        rel_vel = vel_b - vel_a
        hit, min_distance, t_star = fused_window_batch(
            rel[:, 0], rel[:, 1], rel_vel[:, 0], rel_vel[:, 1], radius, durations,
            track_closest=False,
        )
        assert min_distance is None and t_star is None
        full_hit, _, _ = fused_window_batch(
            rel[:, 0], rel[:, 1], rel_vel[:, 0], rel_vel[:, 1], radius, durations
        )
        assert np.array_equal(hit, full_hit, equal_nan=True)


class TestFusedScalarKernel:
    @DETERMINISM_SETTINGS
    @given(
        st.tuples(coords, coords), st.tuples(speeds, speeds),
        st.tuples(coords, coords), st.tuples(speeds, speeds),
        st.floats(0.0, 5.0), st.floats(0.0, 20.0),
    )
    def test_equals_unfused_pair(self, pos_a, vel_a, pos_b, vel_b, radius, duration):
        hit, approach = first_hit_and_closest_approach(
            pos_a, vel_a, pos_b, vel_b, radius, duration
        )
        assert hit == first_time_within(pos_a, vel_a, pos_b, vel_b, radius, duration)
        unfused = closest_approach_moving_points(pos_a, vel_a, pos_b, vel_b, duration)
        assert approach.min_distance == unfused.min_distance
        assert approach.time_offset == unfused.time_offset

    def test_track_closest_false(self):
        hit, approach = first_hit_and_closest_approach(
            (0.0, 0.0), (0.0, 0.0), (10.0, 0.0), (-1.0, 0.0), 1.0, 100.0,
            track_closest=False,
        )
        assert hit == pytest.approx(9.0)
        assert approach is None

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            first_hit_and_closest_approach(
                (0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (0.0, 0.0), -1.0, 1.0
            )
        with pytest.raises(ValueError):
            first_hit_and_closest_approach(
                (0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (0.0, 0.0), 1.0, -1.0
            )
