"""Tests for LocalPath: truncation, chunking, backtracking, rotation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.motion.instructions import Move, Wait
from repro.motion.localpath import LocalPath, LocalStep
from repro.util.errors import AlgorithmContractError

steps_strategy = st.lists(
    st.one_of(
        st.tuples(st.floats(-5.0, 5.0), st.floats(-5.0, 5.0)).map(lambda d: Move(*d)),
        st.floats(0.0, 5.0).map(Wait),
    ),
    min_size=0,
    max_size=12,
)


def sample_path() -> LocalPath:
    return LocalPath.from_instructions(
        [Move(2.0, 0.0), Wait(1.0), Move(0.0, 3.0), Move(-1.0, 0.0)]
    )


class TestLocalStep:
    def test_wait_detection(self):
        assert LocalStep(0.0, 0.0, 2.0).is_wait
        assert not LocalStep(1.0, 0.0, 1.0).is_wait

    def test_invalid_step(self):
        with pytest.raises(AlgorithmContractError):
            LocalStep(1.0, 0.0, -1.0)
        with pytest.raises(AlgorithmContractError):
            LocalStep(float("nan"), 0.0, 1.0)

    def test_split(self):
        head, tail = LocalStep(4.0, 0.0, 4.0).split_at(1.0)
        assert head.dx == pytest.approx(1.0) and head.duration == pytest.approx(1.0)
        assert tail.dx == pytest.approx(3.0) and tail.duration == pytest.approx(3.0)

    def test_split_out_of_range(self):
        with pytest.raises(ValueError):
            LocalStep(1.0, 0.0, 1.0).split_at(2.0)

    def test_to_instruction(self):
        assert LocalStep(0.0, 0.0, 2.0).to_instruction() == Wait(2.0)
        assert LocalStep(1.0, 2.0, math.hypot(1, 2)).to_instruction() == Move(1.0, 2.0)


class TestConstruction:
    def test_from_instructions_drops_nulls(self):
        path = LocalPath.from_instructions([Move(0.0, 0.0), Wait(0.0), Move(1.0, 0.0)])
        assert len(path) == 1

    def test_measures(self):
        path = sample_path()
        assert path.total_duration() == pytest.approx(2.0 + 1.0 + 3.0 + 1.0)
        assert path.total_length() == pytest.approx(6.0)
        assert path.end_displacement() == pytest.approx((1.0, 3.0))
        assert not path.is_closed()

    def test_position_at(self):
        path = sample_path()
        assert path.position_at(-1.0) == (0.0, 0.0)
        assert path.position_at(1.0) == pytest.approx((1.0, 0.0))
        assert path.position_at(2.5) == pytest.approx((2.0, 0.0))  # inside the wait
        assert path.position_at(4.0) == pytest.approx((2.0, 1.0))
        assert path.position_at(100.0) == pytest.approx((1.0, 3.0))

    def test_vertices_skip_waits(self):
        assert sample_path().vertices() == [(0.0, 0.0), (2.0, 0.0), (2.0, 3.0), (1.0, 3.0)]

    def test_as_polyline(self):
        assert sample_path().as_polyline().length() == pytest.approx(6.0)

    def test_equality_and_repr(self):
        assert sample_path() == sample_path()
        assert "LocalPath" in repr(sample_path())


class TestTruncate:
    def test_truncate_shorter(self):
        path = sample_path().truncate(2.5)
        assert path.total_duration() == pytest.approx(2.5)
        assert path.end_displacement() == pytest.approx((2.0, 0.0))

    def test_truncate_splits_moves(self):
        path = sample_path().truncate(1.0)
        assert path.end_displacement() == pytest.approx((1.0, 0.0))

    def test_truncate_pads_with_wait(self):
        path = sample_path().truncate(100.0)
        assert path.total_duration() == pytest.approx(100.0)
        assert path.end_displacement() == pytest.approx((1.0, 3.0))

    def test_truncate_negative(self):
        with pytest.raises(ValueError):
            sample_path().truncate(-1.0)

    @given(steps_strategy, st.floats(0.0, 30.0))
    def test_truncate_duration_property(self, instructions, duration):
        path = LocalPath.from_instructions(instructions)
        truncated = path.truncate(duration)
        assert truncated.total_duration() == pytest.approx(duration, abs=1e-7)


class TestChunks:
    def test_chunks_cover_whole_path(self):
        path = sample_path()
        chunks = path.chunks(1.0)
        assert len(chunks) == 7
        assert sum(chunk.total_duration() for chunk in chunks) == pytest.approx(7.0)
        # Re-assembling the chunks reproduces the net displacement.
        dx = sum(chunk.end_displacement()[0] for chunk in chunks)
        dy = sum(chunk.end_displacement()[1] for chunk in chunks)
        assert (dx, dy) == pytest.approx(path.end_displacement())

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            sample_path().chunks(0.0)

    @given(steps_strategy, st.floats(0.1, 4.0))
    def test_every_chunk_has_requested_duration(self, instructions, chunk_duration):
        path = LocalPath.from_instructions(instructions)
        for chunk in path.chunks(chunk_duration):
            assert chunk.total_duration() == pytest.approx(chunk_duration, abs=1e-6)


class TestBacktrackAndRotate:
    def test_backtrack_returns_to_start(self):
        path = sample_path()
        roundtrip = path.concatenate(path.backtrack())
        assert roundtrip.is_closed()

    def test_backtrack_drops_waits(self):
        assert all(not step.is_wait for step in sample_path().backtrack())

    def test_backtrack_duration_bounded(self):
        path = sample_path()
        assert path.backtrack().total_duration() <= path.total_duration()

    def test_rotated_lengths_preserved(self):
        path = sample_path()
        rotated = path.rotated(1.1)
        assert rotated.total_length() == pytest.approx(path.total_length())
        assert rotated.total_duration() == pytest.approx(path.total_duration())

    def test_rotated_quarter_turn_displacement(self):
        path = LocalPath.from_instructions([Move(1.0, 0.0)]).rotated(math.pi / 2.0)
        assert path.end_displacement() == pytest.approx((0.0, 1.0), abs=1e-12)

    def test_to_instructions_roundtrip(self):
        path = sample_path()
        again = LocalPath.from_instructions(path.to_instructions())
        assert again.end_displacement() == pytest.approx(path.end_displacement())
        assert again.total_duration() == pytest.approx(path.total_duration())

    @given(steps_strategy)
    def test_backtrack_property(self, instructions):
        path = LocalPath.from_instructions(instructions)
        combined = path.concatenate(path.backtrack())
        assert combined.is_closed(tol=1e-6)
