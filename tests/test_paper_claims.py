"""Integration tests tying the implementation back to the paper's statements.

Each test names the lemma/claim/theorem it exercises.  These are *executable
checks* of the paper's structural facts on concrete instances — they do not
re-prove the statements, but a bug in the model (frames, units, canonical
line, engine) would break them.
"""

import math
from fractions import Fraction

import pytest

from repro.algorithms.almost_universal import AlmostUniversalRV
from repro.algorithms.base import FunctionAlgorithm
from repro.algorithms.cow_walk import planar_cow_walk
from repro.algorithms.dedicated import dedicated_witness
from repro.analysis.sampler import InstanceSampler
from repro.core.canonical import canonical_geometry
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.geometry.lines import Line
from repro.geometry.vec import dist
from repro.motion.compiler import compile_trajectory
from repro.motion.instructions import Move, Wait
from repro.sim.engine import simulate


def positions_at(instance, program_factory, times):
    """Positions of both agents at the given absolute times (no early stop)."""
    specs = instance.agents()
    tracks = []
    for spec, role in zip(specs, "AB"):
        segments = list(compile_trajectory(spec, program_factory(instance, spec, role)))
        positions = []
        for when in times:
            position = spec.start
            for segment in segments:
                if when < segment.start_time:
                    break
                offset = min(when - segment.start_time, segment.duration)
                position = (
                    segment.start_pos[0] + segment.velocity[0] * offset,
                    segment.start_pos[1] + segment.velocity[1] * offset,
                )
            positions.append(position)
        tracks.append(positions)
    return tracks


class TestLemma21MirrorSymmetry:
    """Lemma 2.1: for synchronous chi=-1 instances, the later agent's trajectory
    is the earlier agent's trajectory shifted along L and mirrored across L."""

    def make_program(self):
        def program(instance, spec, role):
            yield Move(1.0, 0.5)
            yield Wait(0.5)
            yield Move(-2.0, 1.0)
            yield Move(0.5, -3.0)

        return program

    @pytest.mark.parametrize(
        "instance",
        [
            Instance(r=0.1, x=4.0, y=2.0, phi=0.0, chi=-1, t=1.5),
            Instance(r=0.1, x=3.0, y=1.0, phi=2.0, chi=-1, t=0.75),
            Instance(r=0.1, x=-2.0, y=3.0, phi=4.0, chi=-1, t=2.0),
        ],
    )
    def test_trajectory_is_shift_plus_reflection(self, instance):
        geometry = canonical_geometry(instance)
        program = self.make_program()
        times = [0.25, 1.0, 2.0, 3.5, 5.0, 7.0]
        track_a, track_b = positions_at(instance, program, times)
        shift = (
            geometry.proj_b[0] - geometry.proj_a[0],
            geometry.proj_b[1] - geometry.proj_a[1],
        )
        for when, pos_b in zip(times, track_b):
            if when < instance.t:
                continue
            # Position of A at time (when - t), shifted by projA->projB and
            # reflected across the canonical line, must equal B's position.
            track_a_then = positions_at(instance, program, [when - instance.t])[0][0]
            shifted = (track_a_then[0] + shift[0], track_a_then[1] + shift[1])
            mirrored = geometry.line.reflect(shifted)
            assert mirrored == pytest.approx(pos_b, abs=1e-9)

    def test_corollary_21_projection_distance_invariant(self):
        """Corollary 2.1: dist(projA(z - t), projB(z)) stays equal to dist(projA, projB)."""
        instance = Instance(r=0.1, x=4.0, y=2.0, phi=1.0, chi=-1, t=1.25)
        geometry = canonical_geometry(instance)
        program = self.make_program()
        times = [1.5, 2.5, 4.0, 6.0]
        for when in times:
            pos_a = positions_at(instance, program, [when - instance.t])[0][0]
            pos_b = positions_at(instance, program, [when])[1][0]
            proj_a = geometry.line.project(pos_a)
            proj_b = geometry.line.project(pos_b)
            assert dist(proj_a, proj_b) == pytest.approx(geometry.proj_distance, abs=1e-9)


class TestClaim37PlanarCoverage:
    """Claim 3.7: PlanarCowWalk(i) run by an agent with unit u gets within r of
    every point at distance at most 2**i * u, provided u / 2**i <= r."""

    def test_agent_with_small_unit(self):
        from repro.geometry.segments import Segment

        instance = Instance(r=0.25, x=1.5, y=-0.75, tau=0.5, v=1.0)  # B's unit is 0.5
        spec = instance.agent_b()
        segments = list(compile_trajectory(spec, planar_cow_walk(2)))
        target = (0.0, 0.0)  # agent A's position, at distance ~1.68 < 2**2 * 0.5
        best = min(
            Segment(segment.start_pos, segment.end_pos).distance_to_point(target)
            for segment in segments
            if not segment.is_stationary or segment.duration > 0.0
        )
        assert best <= instance.r


class TestTheorem31Characterization:
    """Theorem 3.1, both directions, on stratified random instances."""

    def test_feasible_classes_have_witnesses(self):
        sampler = InstanceSampler(seed=17)
        for cls in (
            InstanceClass.TYPE_1,
            InstanceClass.TYPE_2,
            InstanceClass.TYPE_3,
            InstanceClass.TYPE_4,
            InstanceClass.S1_BOUNDARY,
            InstanceClass.S2_BOUNDARY,
        ):
            instance = sampler.of_class(cls)
            witness = dedicated_witness(instance)
            result = simulate(
                instance, witness, max_time=1e9, max_segments=300_000, radius_slack=1e-9
            )
            assert result.met, f"{cls} witness failed"

    def test_infeasible_lower_bound_chi_plus(self):
        instance = Instance(r=0.5, x=3.0, y=0.0, t=1.0)
        result = simulate(instance, AlmostUniversalRV(), max_time=1e5, max_segments=80_000)
        assert not result.met
        assert result.min_distance >= instance.initial_distance - instance.t - 1e-9

    def test_infeasible_lower_bound_chi_minus(self):
        instance = Instance(r=0.5, x=4.0, y=1.0, phi=0.0, chi=-1, t=1.0)
        result = simulate(instance, AlmostUniversalRV(), max_time=1e5, max_segments=80_000)
        assert not result.met
        # Projection distance is 4; it can shrink by at most t = 1.
        assert result.min_distance >= 4.0 - 1.0 - 1e-9


class TestSection4ExceptionBehaviour:
    """Section 4: on the boundary the meeting has zero slack."""

    def test_lemma39_meeting_distance_exactly_r(self, s2_instance):
        from repro.algorithms.dedicated import Lemma39Boundary

        result = simulate(s2_instance, Lemma39Boundary(), radius_slack=1e-12)
        assert result.met
        assert result.meeting_distance == pytest.approx(s2_instance.r, abs=1e-9)

    def test_s1_dedicated_meeting_distance_exactly_r(self, s1_instance):
        from repro.algorithms.dedicated import AlignedDelayWalk

        result = simulate(s1_instance, AlignedDelayWalk(), radius_slack=1e-12)
        assert result.met
        assert result.meeting_distance == pytest.approx(s1_instance.r, abs=1e-9)

    def test_perturbed_boundary_is_covered_by_universal(self, s1_instance):
        perturbed = s1_instance.with_delay(s1_instance.t + 1.0)
        result = simulate(perturbed, AlmostUniversalRV(), max_time=1e9, max_segments=400_000)
        assert result.met


class TestConclusionDifferentRadii:
    """Section 5: the results survive different visibility radii.

    Rendezvous is defined with the *smaller* radius; running any working
    algorithm as if both agents had the larger radius gets them within the
    larger radius, and the planar-search phases then close the remaining gap.
    Executably: shrinking r (the common radius stands in for the smaller one)
    still yields rendezvous, just later.
    """

    def test_smaller_radius_still_met_but_later(self):
        big = Instance(r=0.8, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.5)
        small = big.with_visibility_radius(0.2)
        algorithm = AlmostUniversalRV()
        result_big = simulate(big, algorithm, max_time=1e9, max_segments=400_000)
        result_small = simulate(small, algorithm, max_time=1e9, max_segments=400_000)
        assert result_big.met and result_small.met
        assert result_small.meeting_time >= result_big.meeting_time


class TestExactTimebaseIntegration:
    def test_type3_meeting_time_is_exact_fraction(self, type3_instance):
        result = simulate(
            type3_instance,
            AlmostUniversalRV(),
            max_time=1e45,
            max_segments=400_000,
            timebase="exact",
        )
        assert result.met
        assert isinstance(result.meeting_time_exact, Fraction)
