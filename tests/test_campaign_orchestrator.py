"""Campaign orchestration: crash/resume, recompute counters, cache policy.

The acceptance contract of the campaign subsystem, pinned end to end: kill a
campaign partway (simulated via a shard-failure injection hook and via
``max_shards``), resume it, and (1) **zero** completed shards recompute —
observable through the run stats counters and through
``motion.compiler.rows_compiled_total`` — while (2) the final stored columns
are *bit-identical* to a single uninterrupted run.  A freeze-heavy cell under
both the float (vectorized) and exact (event fallback) timebases doubles as
the ROADMAP's asymmetric exact cross-check: the same instances, two
authoritative paths, compared column against column.
"""

import numpy as np
import pytest

from repro.campaign import (
    CampaignArm,
    CampaignError,
    CampaignSpec,
    CampaignStore,
    plan_shards,
    resolve_cache_policy,
    run_campaign,
)
from repro.sim import rounds


def make_spec(**overrides):
    base = dict(
        name="orchestration-unit",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1", "type-2"),
        instances_per_cell=8,
        seed=13,
        simulator={"max_time": 1e6, "max_segments": 50_000},
        shard_size=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def freeze_heavy_spec(**overrides):
    """Strongly asymmetric radii: the larger-radius agent freezes in most runs."""
    base = dict(
        name="freeze-crosscheck",
        arms=(
            CampaignArm(
                algorithm="almost-universal-compact",
                label="float",
                options={"radius_a_ratio": 1.0, "radius_b_ratio": 0.25},
            ),
            CampaignArm(
                algorithm="almost-universal-compact",
                label="exact",
                options={
                    "radius_a_ratio": 1.0,
                    "radius_b_ratio": 0.25,
                    "timebase": "exact",
                },
            ),
        ),
        classes=("type-1",),
        instances_per_cell=5,
        seed=23,
        simulator={"max_time": 1e6, "max_segments": 50_000},
        shard_size=2,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def identical_stores(dir_a, dir_b):
    a = CampaignStore(dir_a).export_columns()
    b = CampaignStore(dir_b).export_columns()
    assert set(a) == set(b)
    for name in a:
        assert a[name].tobytes() == b[name].tobytes(), f"column {name} differs"


class TestRunAndResume:
    def test_uninterrupted_run_completes(self, tmp_path):
        stats = run_campaign(str(tmp_path / "camp"), make_spec())
        plan = plan_shards(make_spec())
        assert stats.complete and not stats.interrupted
        assert stats.shards_executed == len(plan)
        assert stats.shards_skipped == 0
        assert stats.rows_computed == make_spec().total_instances
        assert stats.rows_recomputed == 0

    def test_rerun_of_a_complete_campaign_executes_nothing(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(directory, make_spec())
        again = run_campaign(directory, make_spec())
        assert again.shards_executed == 0
        assert again.rows_computed == 0
        assert again.shards_skipped == again.shards_planned

    def test_resume_loads_the_stored_spec(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(directory, make_spec(), max_shards=2)
        stats = run_campaign(directory)  # no spec: a resume
        assert stats.complete
        assert stats.shards_skipped == 2

    def test_resume_without_directory_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="not a campaign directory"):
            run_campaign(str(tmp_path / "missing"))

    def test_max_shards_interrupts_cleanly(self, tmp_path):
        stats = run_campaign(str(tmp_path / "camp"), make_spec(), max_shards=2)
        assert stats.interrupted and not stats.complete
        assert stats.shards_executed == 2

    def test_interrupt_resume_is_bit_identical_with_zero_recompute(self, tmp_path):
        """The headline acceptance: kill partway, resume, compare everything."""
        from repro.motion import compiler as motion_compiler

        straight, resumed = str(tmp_path / "straight"), str(tmp_path / "resumed")
        spec = make_spec()
        run_campaign(straight, spec)

        first = run_campaign(resumed, spec, max_shards=3)
        assert first.interrupted and first.shards_executed == 3
        before_rows = motion_compiler.rows_compiled_total()
        second = run_campaign(resumed, spec)
        assert second.complete
        # Zero finished shards recomputed, pinned by every counter we have:
        assert second.shards_skipped == 3
        assert second.rows_recomputed == 0
        assert first.rows_computed + second.rows_computed == spec.total_instances
        assert set(first.executed_shard_ids).isdisjoint(second.executed_shard_ids)
        # ... and the resumed store is byte-for-byte the uninterrupted one.
        identical_stores(straight, resumed)
        assert motion_compiler.rows_compiled_total() >= before_rows  # sanity

    def test_crash_via_shard_hook_then_resume(self, tmp_path):
        """A mid-campaign exception leaves a valid, resumable directory."""
        straight, crashed = str(tmp_path / "straight"), str(tmp_path / "crashed")
        spec = make_spec()
        run_campaign(straight, spec)

        executed = []

        def dying_hook(shard):
            if len(executed) == 2:
                raise RuntimeError("simulated crash between checkpoints")
            executed.append(shard.shard_id)

        with pytest.raises(RuntimeError, match="simulated crash"):
            run_campaign(crashed, spec, shard_hook=dying_hook)
        assert len(CampaignStore(crashed).completed()) == 2

        stats = run_campaign(crashed, spec)
        assert stats.complete
        assert stats.shards_skipped == 2
        assert sorted(executed) == sorted(
            set(s.shard_id for s in plan_shards(spec)) - set(stats.executed_shard_ids)
        )
        identical_stores(straight, crashed)

    def test_shard_partition_does_not_change_stored_results(self, tmp_path):
        """Same campaign at shard_size 3 vs 8: identical per-row columns."""
        small, large = str(tmp_path / "small"), str(tmp_path / "large")
        run_campaign(small, make_spec(shard_size=3))
        run_campaign(large, make_spec(shard_size=8))
        a = CampaignStore(small).export_columns()
        b = CampaignStore(large).export_columns()
        for name in a:
            assert a[name].tobytes() == b[name].tobytes(), name

    def test_conflicting_spec_is_refused(self, tmp_path):
        directory = str(tmp_path / "camp")
        run_campaign(directory, make_spec(), max_shards=1)
        with pytest.raises(CampaignError, match="refusing"):
            run_campaign(directory, make_spec(seed=99))


class TestCachePolicy:
    def test_auto_resolves_against_the_entry_budget(self, monkeypatch):
        spec = make_spec()  # 2 classes x 8 instances + 1 = 17 distinct compilers
        assert resolve_cache_policy(spec, "auto") == "all"
        monkeypatch.setattr(rounds, "_COMPILER_CACHE_LIMIT", 16)
        assert resolve_cache_policy(spec, "auto") == "shared-only"
        assert resolve_cache_policy(spec, "all") == "all"
        assert resolve_cache_policy(spec, "shared-only") == "shared-only"

    def test_auto_counts_entries_per_distinct_algorithm(self, monkeypatch):
        # Cache entries key on (program_cache_key, spec): two distinct
        # algorithms double the estimate; two arms of the *same* algorithm
        # (e.g. a ratio grid) do not.
        two_algorithms = make_spec(
            arms=(
                CampaignArm(algorithm="almost-universal-compact"),
                CampaignArm(algorithm="almost-universal", label="paper"),
            )
        )  # 2 x (2 x 8 + 1) = 34
        same_algorithm = make_spec(
            arms=(
                CampaignArm(algorithm="almost-universal-compact"),
                CampaignArm(
                    algorithm="almost-universal-compact",
                    label="quarter",
                    options={"radius_b_ratio": 0.25},
                ),
            )
        )  # 1 x (2 x 8 + 1) = 17
        monkeypatch.setattr(rounds, "_COMPILER_CACHE_LIMIT", 20)
        assert resolve_cache_policy(two_algorithms, "auto") == "shared-only"
        assert resolve_cache_policy(same_algorithm, "auto") == "all"

    def test_unknown_policy_rejected(self):
        with pytest.raises(CampaignError, match="cache_policy"):
            resolve_cache_policy(make_spec(), "most")

    def test_shared_only_campaign_admits_only_a_side(self, tmp_path, monkeypatch):
        monkeypatch.setattr(rounds, "_BUILDER_CACHE", {})
        monkeypatch.setattr(rounds, "_COMPILER_CACHE", {})
        stats = run_campaign(
            str(tmp_path / "camp"), make_spec(), cache_policy="shared-only"
        )
        assert stats.cache_policy == "shared-only"
        assert rounds._COMPILER_CACHE
        assert all(spec_key.name == "A" for _, spec_key in rounds._COMPILER_CACHE)

    def test_policy_does_not_change_stored_columns(self, tmp_path):
        default, restricted = str(tmp_path / "default"), str(tmp_path / "restricted")
        run_campaign(default, make_spec(), cache_policy="all")
        run_campaign(restricted, make_spec(), cache_policy="shared-only")
        identical_stores(default, restricted)


class TestFreezeHeavyExactCrossCheck:
    """Float-vectorized vs exact-event freeze columns on identical instances.

    Doubles as the ROADMAP's "exact-timebase asymmetric cross-check": the
    exact arm bounds the event engine's accumulated error around freeze
    events, and the campaign machinery guarantees both arms simulated the
    *same* sampled instances (class-keyed streams).
    """

    @pytest.fixture(scope="class")
    def columns(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("freeze") / "camp")
        spec = freeze_heavy_spec()
        # Interrupt and resume mid-way so the cross-check also exercises the
        # checkpoint path for asymmetric and exact shards.
        run_campaign(directory, spec, max_shards=3)
        stats = run_campaign(directory)
        assert stats.complete
        return CampaignStore(directory).export_columns()

    def test_instances_match_across_arms(self, columns):
        float_arm, exact_arm = columns["arm"] == 0, columns["arm"] == 1
        for name in ("instance_r", "instance_x", "instance_y", "instance_t"):
            assert np.array_equal(columns[name][float_arm], columns[name][exact_arm])

    def test_shard_runs_froze(self, columns):
        float_arm = columns["arm"] == 0
        assert (columns["frozen"][float_arm] >= 0).sum() >= 3

    def test_exact_event_agrees_with_vectorized_float(self, columns):
        float_arm, exact_arm = columns["arm"] == 0, columns["arm"] == 1
        assert np.array_equal(columns["met"][float_arm], columns["met"][exact_arm])
        mt_f, mt_e = columns["meeting_time"][float_arm], columns["meeting_time"][exact_arm]
        both = ~np.isnan(mt_f) & ~np.isnan(mt_e)
        assert np.allclose(mt_f[both], mt_e[both], rtol=1e-9, atol=1e-12)
        md_f, md_e = columns["min_distance"][float_arm], columns["min_distance"][exact_arm]
        finite = np.isfinite(md_f) & np.isfinite(md_e)
        assert np.allclose(md_f[finite], md_e[finite], rtol=1e-9, atol=1e-12)


class TestPhaseObservability:
    """REPRO_OBS=on: manifests gain phase slices; results must not change."""

    def test_inline_run_records_wall_phase_slices(self, tmp_path):
        from repro.obs.core import _override_mode
        from repro.obs.phases import WALL_PHASES

        directory = str(tmp_path / "camp")
        with _override_mode("on"):
            stats = run_campaign(directory, make_spec())
        assert stats.complete
        records = CampaignStore(directory).completed()
        assert records
        for record in records.values():
            phases = record["phases"]
            # The inline loop collects only the wall-window leaves — the
            # umbrella span and lease/store_write stay out of the bucket.
            assert set(phases) <= set(WALL_PHASES)
            assert "engine.kernel_solve" in phases
            attributed = sum(phases.get(key, 0.0) for key in WALL_PHASES)
            assert 0.0 < attributed <= record["wall_seconds"] + 1e-6

    def test_instrumented_store_is_byte_identical_to_off(self, tmp_path):
        from repro.obs.core import _override_mode

        plain, traced = str(tmp_path / "off"), str(tmp_path / "on")
        with _override_mode("off"):
            run_campaign(plain, make_spec())
        with _override_mode("on"):
            run_campaign(traced, make_spec())
        identical_stores(plain, traced)

    def test_off_mode_manifest_carries_no_phases(self, tmp_path):
        from repro.obs.core import _override_mode

        directory = str(tmp_path / "camp")
        with _override_mode("off"):
            run_campaign(directory, make_spec())
        for record in CampaignStore(directory).completed().values():
            assert "phases" not in record
