"""Exact-timebase cross-check of the vectorized batch engine.

The float-parity suites pin ``simulate_batch`` against the *float-timebase*
event engine — both sides can, in principle, drift together.  This suite
closes that loop against the exact timebase (``Fraction`` timestamps, the
repository's ground truth): every float instance is exactly representable
(floats are dyadic rationals), so an exact event run accumulates the very
same segment durations without any rounding on the time axis, and comparing
the batch engine's float meeting times against it *bounds the accumulated
float error* of the whole columnar pipeline — compile-time cumsums, window
stacking and kernel — not just its agreement with another float engine.

Deep phases are the interesting regime: the universal algorithm's phase
waits grow geometrically, so late meetings sit on timestamps that are sums
of thousands of segment durations.  The sampled suite keeps a spread of
classes plus hand-built deep/late-meeting instances while staying fast
enough for tier 1.
"""

import math

import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.sim.batch import simulate_batch
from repro.sim.engine import RendezvousSimulator

MAX_TIME = 1e4
MAX_SEGMENTS = 20_000

#: Relative bound on the batch engine's accumulated float error against the
#: exact timebase.  Matches the float parity contract: the engines' 1e-9
#: tolerance absorbs accumulation differences, and the exact run shows the
#: accumulation itself stays well inside it.
REL_TOLERANCE = 1e-9

SAMPLED_CLASSES = (
    InstanceClass.TRIVIAL,
    InstanceClass.TYPE_1,
    InstanceClass.TYPE_2,
    InstanceClass.TYPE_3,
    InstanceClass.TYPE_4,
)


def _exact_run(instance, algorithm_name, **overrides):
    simulator = RendezvousSimulator(
        max_time=overrides.get("max_time", MAX_TIME),
        max_segments=overrides.get("max_segments", MAX_SEGMENTS),
        timebase="exact",
    )
    return simulator.run(instance, get_algorithm(algorithm_name))


def _batch_run(instances, algorithm_name, **overrides):
    return simulate_batch(
        instances,
        get_algorithm(algorithm_name),
        max_time=overrides.get("max_time", MAX_TIME),
        max_segments=overrides.get("max_segments", MAX_SEGMENTS),
    )


def assert_matches_exact(exact, batch):
    __tracebackhide__ = True
    assert batch.met == exact.met
    assert batch.termination == exact.termination
    if exact.met:
        assert batch.meeting_time == pytest.approx(
            exact.meeting_time, rel=REL_TOLERANCE, abs=REL_TOLERANCE
        )
    if math.isfinite(exact.min_distance):
        assert batch.min_distance == pytest.approx(
            exact.min_distance, rel=REL_TOLERANCE, abs=REL_TOLERANCE
        )


class TestSampledCrossCheck:
    @pytest.mark.parametrize("cls", SAMPLED_CLASSES)
    def test_universal_against_exact_timebase(self, cls):
        sampler = InstanceSampler(seed=2026)
        instances = sampler.batch_of_class(cls, 2)
        batch = _batch_run(instances, "almost-universal-compact")
        for instance, batch_result in zip(instances, batch):
            exact = _exact_run(instance, "almost-universal-compact")
            assert_matches_exact(exact, batch_result)

    def test_dedicated_against_exact_timebase(self):
        sampler = InstanceSampler(seed=7)
        instances = sampler.batch_of_class(InstanceClass.TYPE_4, 3)
        batch = _batch_run(instances, "dedicated")
        for instance, batch_result in zip(instances, batch):
            exact = _exact_run(instance, "dedicated")
            assert_matches_exact(exact, batch_result)


class TestDeepPhaseAccumulation:
    """Late meetings: timestamps that are sums of many segment durations."""

    def test_late_meeting_accumulated_error_is_bounded(self):
        # A distant, slow-to-find partner forces the universal enumeration
        # through many phases before the meeting; the meeting timestamp sits
        # on a long accumulation chain in both engines.
        instances = [
            Instance(r=0.25, x=40.0, y=22.5, phi=1.0, tau=1.25, v=0.75, t=3.5),
            Instance(r=0.125, x=-35.0, y=18.0, phi=4.0, tau=0.75, v=1.5, t=0.25),
        ]
        batch = _batch_run(instances, "almost-universal-compact")
        for instance, batch_result in zip(instances, batch):
            exact = _exact_run(instance, "almost-universal-compact")
            assert_matches_exact(exact, batch_result)
            # The point of the exercise: these runs really are deep.
            assert exact.segments_total > 100

    def test_budget_limited_run_agrees(self):
        instance = Instance(r=0.25, x=50.0, y=0.0, t=0.1)
        exact = _exact_run(instance, "almost-universal-compact", max_segments=500)
        batch = _batch_run([instance], "almost-universal-compact", max_segments=500)[0]
        assert_matches_exact(exact, batch)
        assert batch.simulated_time == pytest.approx(
            exact.simulated_time, rel=REL_TOLERANCE
        )
