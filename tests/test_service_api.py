"""The HTTP surface: status codes, backpressure, draining, request hygiene.

A real ``ThreadingHTTPServer`` on an ephemeral loopback port, fronted by a
stub facade — API behavior is pinned independently of the daemon, whose own
lifecycle tests live in ``test_service_daemon.py``.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import CampaignArm, CampaignSpec
from repro.service import MAX_BODY_BYTES, Job, NotReady, QueueFull, make_server


def make_spec(**overrides):
    base = dict(
        name="api-unit",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1",),
        instances_per_cell=4,
        seed=5,
        simulator={"max_time": 1e5, "max_segments": 20_000},
        shard_size=2,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class StubService:
    """A canned facade: each test scripts exactly what the daemon would do."""

    def __init__(self):
        self.pid = 4242
        self.ready = True
        self.reason = "recovering"
        self.submissions = []
        self.submit_result = None
        self.submit_error = None
        self.status_payload = None
        self.report_payload = None
        self.metrics_payload = {"queue": {"depth": 1}, "shards": {}}

    def is_ready(self):
        return self.ready

    def not_ready_reason(self):
        return self.reason

    def submit(self, spec):
        self.submissions.append(spec)
        if self.submit_error is not None:
            raise self.submit_error
        if self.submit_result is not None:
            return self.submit_result
        job = Job(digest=spec.digest(), name=spec.name, spec_data=spec.as_dict())
        return job, True

    def jobs(self):
        return [
            Job(digest="d1", name="one", spec_data={}),
            Job(digest="d2", name="two", spec_data={}, state="complete"),
        ]

    def campaign_status(self, digest):
        return self.status_payload if digest == "known" else None

    def campaign_report(self, digest):
        return self.report_payload if digest == "known" else None

    def metrics(self):
        return self.metrics_payload


@pytest.fixture
def service():
    return StubService()


@pytest.fixture
def base_url(service):
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get_raw(url, accept=None):
    """GET without assuming JSON: returns (status, content-type, body text)."""
    request = urllib.request.Request(url)
    if accept is not None:
        request.add_header("Accept", accept)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode(),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), error.read().decode()


def post(url, body, content_length=None):
    if isinstance(body, (dict, list)):
        body = json.dumps(body).encode()
    request = urllib.request.Request(url, data=body, method="POST")
    if content_length is not None:
        request.add_header("Content-Length", str(content_length))
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestHealth:
    def test_healthz_always_200(self, base_url, service):
        service.ready = False
        code, payload = get(f"{base_url}/healthz")
        assert code == 200 and payload["pid"] == 4242

    def test_readyz_flips_with_readiness(self, base_url, service):
        assert get(f"{base_url}/readyz") == (200, {"ready": True})
        service.ready = False
        code, payload = get(f"{base_url}/readyz")
        assert code == 503 and payload["reason"] == "recovering"


class TestSubmission:
    def test_created_is_201(self, base_url, service):
        code, payload = post(f"{base_url}/campaigns", make_spec().as_dict())
        assert code == 201
        assert payload["state"] == "submitted"
        assert payload["deduplicated"] is False
        assert service.submissions[0].digest() == make_spec().digest()

    def test_dedup_is_200(self, base_url, service):
        spec = make_spec()
        service.submit_result = (
            Job(digest=spec.digest(), name=spec.name, spec_data=spec.as_dict(),
                state="complete"),
            False,
        )
        code, payload = post(f"{base_url}/campaigns", spec.as_dict())
        assert code == 200
        assert payload["deduplicated"] is True
        assert payload["state"] == "complete"

    def test_queue_full_is_429(self, base_url, service):
        service.submit_error = QueueFull("queue depth limit 2 reached")
        code, payload = post(f"{base_url}/campaigns", make_spec().as_dict())
        assert code == 429 and "depth limit" in payload["error"]

    def test_draining_is_503(self, base_url, service):
        service.submit_error = NotReady("daemon is draining; resubmit later")
        code, payload = post(f"{base_url}/campaigns", make_spec().as_dict())
        assert code == 503 and "draining" in payload["error"]

    def test_invalid_spec_is_400(self, base_url):
        code, payload = post(f"{base_url}/campaigns", {"name": "x"})
        assert code == 400 and "invalid campaign spec" in payload["error"]

    def test_unknown_algorithm_is_400(self, base_url):
        spec = dict(make_spec().as_dict())
        spec["arms"] = [{"algorithm": "no-such-algorithm"}]
        code, payload = post(f"{base_url}/campaigns", spec)
        assert code == 400

    def test_malformed_json_is_400(self, base_url):
        code, payload = post(f"{base_url}/campaigns", b"{not json")
        assert code == 400

    def test_empty_body_is_400(self, base_url):
        code, payload = post(f"{base_url}/campaigns", b"")
        assert code == 400

    def test_oversized_body_is_413(self, base_url, service):
        code, payload = post(
            f"{base_url}/campaigns", b"x", content_length=MAX_BODY_BYTES + 1
        )
        assert code == 413
        assert service.submissions == []

    def test_post_elsewhere_is_404(self, base_url):
        code, _ = post(f"{base_url}/other", make_spec().as_dict())
        assert code == 404


class TestViews:
    def test_jobs_listing(self, base_url):
        code, payload = get(f"{base_url}/campaigns")
        assert code == 200
        assert [job["digest"] for job in payload["jobs"]] == ["d1", "d2"]

    def test_status_known_and_unknown(self, base_url, service):
        service.status_payload = {
            "job": {"digest": "known", "state": "running"},
            "campaign": {"shards_complete": 1, "leases_active": 1, "quarantined": []},
        }
        code, payload = get(f"{base_url}/campaigns/known/status")
        assert code == 200 and payload["campaign"]["leases_active"] == 1
        code, payload = get(f"{base_url}/campaigns/ghost/status")
        assert code == 404 and "unknown campaign" in payload["error"]

    def test_report_known_and_unknown(self, base_url, service):
        service.report_payload = {"job": {"digest": "known"}, "cells": []}
        assert get(f"{base_url}/campaigns/known/report")[0] == 200
        assert get(f"{base_url}/campaigns/ghost/report")[0] == 404

    def test_metrics_returns_the_facade_snapshot(self, base_url, service):
        service.metrics_payload = {
            "ready": True,
            "queue": {"depth": 3, "jobs_by_state": {"running": 1, "submitted": 2}},
            "shards": {"shard_attempts": 7, "shards_per_second": 1.25},
        }
        code, payload = get(f"{base_url}/metrics")
        assert code == 200
        assert payload == service.metrics_payload

    def test_unknown_get_is_404(self, base_url):
        assert get(f"{base_url}/nope")[0] == 404
        assert get(f"{base_url}/campaigns/x/unknown-view")[0] == 404


class TestMetricsExposition:
    """Content negotiation on /metrics: JSON default, Prometheus on request."""

    PAYLOAD = {
        "ready": True,
        "queue": {"depth": 3, "jobs_total": 5,
                  "jobs_by_state": {"running": 1, "submitted": 2}},
        "scheduler": {"inflight": 1},
        "shards": {"shards_executed": 7, "wall_seconds": 2.0,
                   "shards_per_second": 3.5},
        "shards_session": {"shards_executed": 2, "wall_seconds": 0.5,
                           "shards_per_second": 4.0},
    }

    def test_query_parameter_selects_prometheus(self, base_url, service):
        service.metrics_payload = self.PAYLOAD
        code, content_type, body = get_raw(f"{base_url}/metrics?format=prometheus")
        assert code == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_queue_depth gauge" in body
        assert "repro_queue_depth 3" in body
        assert 'repro_jobs{state="running"} 1' in body
        assert "# TYPE repro_shards_lifetime_shards_executed_total counter" in body
        assert "repro_shards_session_shards_per_second 4" in body

    def test_accept_header_selects_prometheus(self, base_url, service):
        service.metrics_payload = self.PAYLOAD
        code, content_type, body = get_raw(
            f"{base_url}/metrics", accept="text/plain"
        )
        assert code == 200
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_service_ready gauge" in body

    def test_json_accept_keeps_the_json_default(self, base_url, service):
        service.metrics_payload = self.PAYLOAD
        code, content_type, body = get_raw(
            f"{base_url}/metrics", accept="application/json, text/plain"
        )
        assert code == 200
        assert content_type.startswith("application/json")
        assert json.loads(body) == self.PAYLOAD

    def test_default_remains_json(self, base_url, service):
        service.metrics_payload = self.PAYLOAD
        code, payload = get(f"{base_url}/metrics")
        assert code == 200
        assert payload == self.PAYLOAD
