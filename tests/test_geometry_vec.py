"""Tests for the plain-float vector kernel."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.vec import (
    add,
    angle_of,
    cross,
    dist,
    dist_sq,
    dot,
    from_polar,
    is_close,
    lerp,
    midpoint,
    norm,
    norm_sq,
    normalize,
    perp,
    scale,
    sub,
    vec,
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
vectors = st.tuples(finite, finite)


class TestBasicOps:
    def test_vec_coerces_to_float(self):
        assert vec(1, 2) == (1.0, 2.0)
        assert isinstance(vec(1, 2)[0], float)

    def test_add_sub_roundtrip(self):
        a, b = (1.5, -2.0), (0.5, 3.0)
        assert sub(add(a, b), b) == a

    def test_scale(self):
        assert scale((2.0, -3.0), 0.5) == (1.0, -1.5)

    def test_dot_orthogonal(self):
        assert dot((1.0, 0.0), (0.0, 5.0)) == 0.0

    def test_cross_sign(self):
        assert cross((1.0, 0.0), (0.0, 1.0)) == 1.0
        assert cross((0.0, 1.0), (1.0, 0.0)) == -1.0

    def test_norm_345(self):
        assert norm((3.0, 4.0)) == 5.0
        assert norm_sq((3.0, 4.0)) == 25.0

    def test_dist(self):
        assert dist((1.0, 1.0), (4.0, 5.0)) == 5.0
        assert dist_sq((1.0, 1.0), (4.0, 5.0)) == 25.0

    def test_normalize_unit_length(self):
        assert math.isclose(norm(normalize((3.0, 4.0))), 1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            normalize((0.0, 0.0))

    def test_perp_is_rotation_by_90(self):
        assert perp((1.0, 0.0)) == (0.0, 1.0)
        assert perp((0.0, 1.0)) == (-1.0, 0.0)

    def test_lerp_endpoints_and_midpoint(self):
        a, b = (0.0, 0.0), (2.0, 4.0)
        assert lerp(a, b, 0.0) == a
        assert lerp(a, b, 1.0) == b
        assert lerp(a, b, 0.5) == midpoint(a, b) == (1.0, 2.0)

    def test_is_close_tolerance(self):
        assert is_close((1.0, 1.0), (1.0 + 1e-12, 1.0))
        assert not is_close((1.0, 1.0), (1.1, 1.0))

    def test_angle_of_cardinals(self):
        assert angle_of((1.0, 0.0)) == 0.0
        assert math.isclose(angle_of((0.0, 1.0)), math.pi / 2.0)
        assert math.isclose(angle_of((-1.0, 0.0)), math.pi)

    def test_from_polar(self):
        x, y = from_polar(2.0, math.pi / 2.0)
        assert math.isclose(x, 0.0, abs_tol=1e-12)
        assert math.isclose(y, 2.0)


class TestProperties:
    @given(vectors, vectors)
    def test_add_commutative(self, a, b):
        assert add(a, b) == add(b, a)

    @given(vectors, vectors)
    def test_dot_symmetric(self, a, b):
        assert dot(a, b) == dot(b, a)

    @given(vectors)
    def test_perp_orthogonal_and_same_norm(self, a):
        assert dot(a, perp(a)) == pytest.approx(0.0, abs=1e-3)
        assert norm(perp(a)) == pytest.approx(norm(a), rel=1e-12, abs=1e-12)

    @given(vectors, vectors)
    def test_triangle_inequality(self, a, b):
        assert norm(add(a, b)) <= norm(a) + norm(b) + 1e-6

    @given(vectors, vectors)
    def test_dist_symmetric(self, a, b):
        assert dist(a, b) == dist(b, a)

    @given(st.floats(0.1, 1e3), st.floats(-math.pi, math.pi))
    def test_from_polar_roundtrip(self, radius, angle):
        point = from_polar(radius, angle)
        assert norm(point) == pytest.approx(radius, rel=1e-9)
        assert angle_of(point) == pytest.approx(angle, abs=1e-9)
