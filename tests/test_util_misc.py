"""Tests for validation helpers, timers, logging and the exception hierarchy."""

import logging
import time

import pytest

from repro.util.errors import (
    AlgorithmContractError,
    InvalidInstanceError,
    KnowledgeError,
    ReproError,
    SimulationBudgetExceeded,
)
from repro.util.logging import get_logger
from repro.util.timers import WallTimer, format_duration
from repro.util.validation import (
    require,
    require_finite,
    require_in_range,
    require_non_negative,
    require_positive,
)


class TestValidation:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_custom_exception(self):
        with pytest.raises(InvalidInstanceError):
            require(False, "bad", InvalidInstanceError)

    @pytest.mark.parametrize("value", [1, 0.5, 1e-9])
    def test_require_positive_accepts(self, value):
        require_positive(value, "value")

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_require_positive_rejects(self, value):
        with pytest.raises(ValueError):
            require_positive(value, "value")

    @pytest.mark.parametrize("value", [0, 2.5])
    def test_require_non_negative_accepts(self, value):
        require_non_negative(value, "value")

    @pytest.mark.parametrize("value", [-0.1, float("nan")])
    def test_require_non_negative_rejects(self, value):
        with pytest.raises(ValueError):
            require_non_negative(value, "value")

    def test_require_in_range_bounds(self):
        require_in_range(0.0, 0.0, 1.0, "value")
        with pytest.raises(ValueError):
            require_in_range(1.0, 0.0, 1.0, "value")
        require_in_range(1.0, 0.0, 1.0, "value", include_high=True)
        with pytest.raises(ValueError):
            require_in_range(0.0, 0.0, 1.0, "value", include_low=False)

    def test_require_finite(self):
        require_finite(3, "value")
        with pytest.raises(ValueError):
            require_finite(float("inf"), "value")
        with pytest.raises(ValueError):
            require_finite("not a number", "value")


class TestErrors:
    @pytest.mark.parametrize(
        "exc",
        [InvalidInstanceError, SimulationBudgetExceeded, AlgorithmContractError, KnowledgeError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_invalid_instance_is_value_error(self):
        assert issubclass(InvalidInstanceError, ValueError)


class TestTimers:
    def test_elapsed_grows(self):
        with WallTimer() as timer:
            time.sleep(0.001)
        assert timer.elapsed > 0.0

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            WallTimer().stop()

    def test_laps_recorded(self):
        timer = WallTimer()
        timer.start()
        timer.lap("first")
        timer.lap("second")
        assert [label for label, _ in timer.laps] == ["first", "second"]

    @pytest.mark.parametrize(
        "seconds, expected_unit",
        [(1e-6, "us"), (0.01, "ms"), (2.0, "s"), (600.0, "min")],
    )
    def test_format_duration_units(self, seconds, expected_unit):
        assert expected_unit in format_duration(seconds)

    def test_format_duration_negative(self):
        assert format_duration(-2.0).startswith("-")


class TestLogging:
    def test_namespacing(self):
        assert get_logger("sim.engine").name == "repro.sim.engine"
        assert get_logger("repro.core").name == "repro.core"

    def test_null_handler_attached(self):
        get_logger("anything")
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)
