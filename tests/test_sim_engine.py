"""Tests for the event-driven rendezvous engine."""

import math

import pytest

from repro.algorithms.base import FunctionAlgorithm, UniversalAlgorithm
from repro.core.instance import Instance
from repro.motion.instructions import Move, Wait
from repro.sim.engine import RendezvousSimulator, simulate
from repro.sim.results import TerminationReason
from repro.util.errors import SimulationBudgetExceeded


class Still(UniversalAlgorithm):
    """Both agents stay put forever (empty program)."""

    name = "still"

    def program(self):
        return iter(())


class WalkEast(UniversalAlgorithm):
    """Both agents walk East a fixed local distance, then stop."""

    name = "walk-east"

    def __init__(self, distance=10.0):
        self.distance = distance

    def program(self):
        yield Move(self.distance, 0.0)


def head_on_algorithm(instance, spec, role):
    """Role-dependent callable: A walks East, B walks West (toward each other)."""
    if role == "A":
        yield Move(10.0, 0.0)
    else:
        yield Move(-10.0, 0.0)


class TestBasicRuns:
    def test_trivial_instance_meets_immediately(self, trivial_instance):
        result = simulate(trivial_instance, Still())
        assert result.met
        assert result.meeting_time == 0.0
        assert result.termination is TerminationReason.RENDEZVOUS

    def test_static_agents_never_meet(self):
        instance = Instance(r=0.5, x=3.0, y=0.0)
        result = simulate(instance, Still(), max_time=100.0)
        assert not result.met
        assert result.termination is TerminationReason.PROGRAMS_FINISHED
        assert result.min_distance == pytest.approx(3.0)

    def test_head_on_meeting_time(self):
        # Agents 4 apart, approaching at relative speed 2, radius 0.5:
        # they see each other after (4 - 0.5) / 2 = 1.75 time units.
        instance = Instance(r=0.5, x=4.0, y=0.0)
        result = simulate(instance, FunctionAlgorithm(head_on_algorithm, "head-on"))
        assert result.met
        assert result.meeting_time == pytest.approx(1.75)
        assert result.meeting_distance == pytest.approx(0.5)

    def test_same_direction_walk_never_meets(self):
        # Identical frames, same program, simultaneous start: distance never changes.
        instance = Instance(r=0.5, x=3.0, y=0.0)
        result = simulate(instance, WalkEast(), max_time=1e3)
        assert not result.met
        assert result.min_distance == pytest.approx(3.0)

    def test_delayed_agent_is_caught(self):
        # Same walk but B wakes 2.75 later: A closes the gap while B sleeps.
        instance = Instance(r=0.5, x=3.0, y=0.0, t=2.75)
        result = simulate(instance, WalkEast())
        assert result.met
        assert result.meeting_time == pytest.approx(2.5)

    def test_meeting_point_positions_consistent(self):
        instance = Instance(r=0.5, x=4.0, y=0.0)
        result = simulate(instance, FunctionAlgorithm(head_on_algorithm, "head-on"))
        ax, ay = result.meeting_point_a
        bx, by = result.meeting_point_b
        assert math.hypot(ax - bx, ay - by) == pytest.approx(0.5)
        assert ay == 0.0 and by == 0.0

    def test_algorithm_name_from_callable(self):
        instance = Instance(r=5.0, x=1.0, y=0.0)

        def my_alg(instance, spec, role):
            return iter(())

        result = simulate(instance, my_alg)
        assert result.algorithm_name == "my_alg"

    def test_invalid_algorithm_object(self):
        with pytest.raises(TypeError):
            simulate(Instance(r=1.0, x=2.0, y=0.0), object())


class TestBudgets:
    def test_max_time_termination(self):
        instance = Instance(r=0.5, x=100.0, y=0.0)
        result = simulate(instance, WalkEast(1000.0), max_time=10.0)
        assert not result.met
        assert result.termination is TerminationReason.MAX_TIME
        assert result.simulated_time == pytest.approx(10.0)

    def test_max_segments_termination(self):
        def forever(instance, spec, role):
            while True:
                yield Move(1.0, 0.0)
                yield Move(-1.0, 0.0)

        instance = Instance(r=0.5, x=100.0, y=0.0)
        result = simulate(instance, forever, max_time=1e12, max_segments=50)
        assert not result.met
        assert result.termination is TerminationReason.MAX_SEGMENTS
        assert result.segments_total >= 50

    def test_raise_on_budget(self):
        instance = Instance(r=0.5, x=100.0, y=0.0)
        with pytest.raises(SimulationBudgetExceeded):
            simulate(instance, WalkEast(1000.0), max_time=10.0, raise_on_budget=True)

    def test_invalid_budgets(self):
        instance = Instance(r=0.5, x=1.0, y=0.0)
        with pytest.raises(ValueError):
            RendezvousSimulator(max_time=math.inf).run(instance, Still())
        with pytest.raises(ValueError):
            RendezvousSimulator(max_segments=0).run(instance, Still())
        with pytest.raises(ValueError):
            RendezvousSimulator(radius_slack=-1.0).run(instance, Still())


class TestAttributesHandling:
    def test_speed_difference_breaks_symmetry(self):
        # Same program, same start time, but B is twice as fast (tau=1, v=2):
        # B catches up with A along the shared direction.
        instance = Instance(r=0.5, x=-4.0, y=0.0, v=2.0)
        result = simulate(instance, WalkEast(20.0))
        # Gap shrinks at rate 1: from 4 to 0.5 takes 3.5 time units.
        assert result.met
        assert result.meeting_time == pytest.approx(3.5)

    def test_clock_difference_changes_wait_lengths(self):
        class WaitThenWalk(UniversalAlgorithm):
            name = "wait-then-walk"

            def program(self):
                yield Wait(4.0)
                yield Move(10.0, 0.0)

        # B's clock is twice as slow (tau=2), so B waits 8 absolute time units
        # while A waits only 4: A starts moving 4 units earlier and closes the
        # 3.5-unit gap (to radius) during that head start.
        instance = Instance(r=0.5, x=4.0, y=0.0, tau=2.0)
        result = simulate(instance, WaitThenWalk())
        assert result.met
        assert result.meeting_time == pytest.approx(4.0 + 3.5)

    def test_opposite_chirality_mirror(self):
        class WalkNorth(UniversalAlgorithm):
            name = "walk-north"

            def program(self):
                yield Move(0.0, 10.0)

        # With chi=-1 B's "north" is absolute south: the agents, vertically
        # aligned, walk toward each other.
        instance = Instance(r=0.5, x=0.0, y=4.0, chi=-1)
        result = simulate(instance, WalkNorth())
        assert result.met
        assert result.meeting_time == pytest.approx(1.75)

    def test_rotation_changes_direction(self):
        # B's east is absolute west (phi = pi): walking "east" makes them approach.
        instance = Instance(r=0.5, x=4.0, y=0.0, phi=math.pi)
        result = simulate(instance, WalkEast(10.0))
        assert result.met
        assert result.meeting_time == pytest.approx(1.75)


class TestRadiusSlackAndRecording:
    def test_radius_slack_allows_near_miss(self):
        instance = Instance(r=1.0, x=2.000000001, y=0.0)
        assert not simulate(instance, Still(), max_time=10.0).met
        # The pair passes within 2 - (r + slack) once B walks ... use head-on walkers.
        result = simulate(instance, Still(), max_time=10.0, radius_slack=1.1)
        assert result.met

    def test_recording_traces(self):
        instance = Instance(r=0.5, x=4.0, y=0.0)
        result = simulate(
            instance,
            FunctionAlgorithm(head_on_algorithm, "head-on"),
            record_trajectories=True,
        )
        assert result.trace_a is not None and result.trace_b is not None
        assert result.trace_a.start == (0.0, 0.0)
        assert result.trace_b.start == (4.0, 0.0)
        # The last recorded vertex is the meeting position.
        assert result.trace_a.end == pytest.approx(result.meeting_point_a)

    def test_exact_timebase_reported(self):
        instance = Instance(r=0.5, x=4.0, y=0.0)
        result = simulate(instance, FunctionAlgorithm(head_on_algorithm, "head-on"), timebase="exact")
        assert result.timebase_name == "exact"
        assert result.meeting_time == pytest.approx(1.75)
        assert result.meeting_time_exact is not None


class TestEngineAgainstHugeWaits:
    def test_event_driven_cost_independent_of_wait_length(self):
        class LongWaitThenWalk(UniversalAlgorithm):
            name = "long-wait"

            def program(self):
                yield Wait(2.0**40)
                yield Move(10.0, 0.0)

        instance = Instance(r=0.5, x=4.0, y=0.0, t=3.75)
        result = simulate(instance, LongWaitThenWalk(), max_time=2.0**41, timebase="exact")
        assert result.met
        # Only a handful of segments were needed despite the astronomic wait.
        assert result.segments_total < 10

    def test_exact_timebase_detects_meeting_after_huge_wait(self):
        class HugeWaitApproach(UniversalAlgorithm):
            name = "huge-wait-approach"

            def program(self):
                yield Wait(2.0**60)
                yield Move(10.0, 0.0)

        # B's east is absolute west, so after the huge wait they approach and
        # meet 1.75 units of time later — the exact timebase must resolve that
        # sub-ulp offset (ulp at 2**60 is 256).
        instance = Instance(r=0.5, x=4.0, y=0.0, phi=math.pi)
        result = simulate(instance, HugeWaitApproach(), max_time=2.0**61, timebase="exact")
        assert result.met
        assert float(result.meeting_time_exact - 2**60) == pytest.approx(1.75)
