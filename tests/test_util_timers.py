"""Unit tests for the wall-clock helpers every span's timing rides on.

``repro.obs`` spans time their blocks through :class:`WallTimer`, so its
semantics (error paths, restart behaviour, live-vs-stopped ``elapsed``) are
now load-bearing for the phase numbers in manifests and traces.
"""

import time

import pytest

from repro.util.timers import WallTimer, format_duration


class TestWallTimer:
    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError, match=r"stop\(\) called before start"):
            WallTimer().stop()

    def test_lap_before_start_raises(self):
        with pytest.raises(RuntimeError, match=r"lap\(\) called before start"):
            WallTimer().lap()

    def test_elapsed_before_start_is_zero(self):
        assert WallTimer().elapsed == 0.0

    def test_stop_returns_elapsed_and_freezes_it(self):
        timer = WallTimer()
        timer.start()
        time.sleep(0.002)
        returned = timer.stop()
        assert returned == timer.elapsed
        assert returned >= 0.002
        frozen = timer.elapsed
        time.sleep(0.002)
        assert timer.elapsed == frozen

    def test_elapsed_is_live_while_running(self):
        timer = WallTimer()
        timer.start()
        first = timer.elapsed
        time.sleep(0.002)
        assert timer.elapsed > first

    def test_context_manager_round_trip(self):
        with WallTimer() as timer:
            time.sleep(0.001)
        assert timer.stopped_at is not None
        assert timer.elapsed >= 0.001

    def test_restart_clears_the_stop_mark(self):
        timer = WallTimer()
        timer.start()
        timer.stop()
        timer.start()
        assert timer.stopped_at is None
        timer.stop()

    def test_laps_accumulate_with_labels(self):
        timer = WallTimer()
        timer.start()
        first = timer.lap("warm")
        second = timer.lap("solve")
        assert second >= first >= 0.0
        assert [label for label, _ in timer.laps] == ["warm", "solve"]
        assert isinstance(timer.laps, tuple)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds, rendered",
        [
            (0.0, "0.0 us"),
            (5e-7, "0.5 us"),
            (9.99e-4, "999.0 us"),
            (1e-3, "1.0 ms"),
            (0.999, "999.0 ms"),
            (1.0, "1.00 s"),
            (119.99, "119.99 s"),
            (120.0, "2.0 min"),
            (3600.0, "60.0 min"),
        ],
    )
    def test_unit_boundaries(self, seconds, rendered):
        assert format_duration(seconds) == rendered

    @pytest.mark.parametrize(
        "seconds, rendered",
        [(-5e-7, "-0.5 us"), (-0.25, "-250.0 ms"), (-90.0, "-90.00 s"),
         (-7200.0, "-120.0 min")],
    )
    def test_negative_durations_mirror_positive(self, seconds, rendered):
        assert format_duration(seconds) == rendered
