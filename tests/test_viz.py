"""Tests for the ASCII renderer and the figure exporter."""

import json
import math
import os

import pytest

from repro.algorithms.dedicated import OppositeChiralityLineSearch
from repro.core.instance import Instance
from repro.sim.engine import simulate
from repro.viz.ascii_canvas import AsciiCanvas, render_scene, render_simulation
from repro.viz.export import export_all_figures, export_figure
from repro.experiments.figures import figure1_canonical_line


class TestAsciiCanvas:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            AsciiCanvas(4, 2)

    def test_fit_required_before_drawing(self):
        canvas = AsciiCanvas()
        with pytest.raises(RuntimeError):
            canvas.plot_point((0.0, 0.0))

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            AsciiCanvas().fit([])

    def test_point_rendering(self):
        canvas = AsciiCanvas(20, 10)
        canvas.fit([(0.0, 0.0), (4.0, 4.0)])
        canvas.plot_point((0.0, 0.0), "A")
        canvas.plot_point((4.0, 4.0), "B")
        picture = canvas.render()
        assert "A" in picture and "B" in picture
        # A is below-left of B, so it must appear on a later (lower) line.
        assert picture.index("B") < picture.index("A")

    def test_segment_rendering_covers_interior(self):
        canvas = AsciiCanvas(40, 12)
        canvas.fit([(0.0, 0.0), (10.0, 0.0)])
        canvas.plot_segment((0.0, 0.0), (10.0, 0.0), "#")
        picture = canvas.render()
        assert picture.count("#") >= 20

    def test_render_dimensions(self):
        canvas = AsciiCanvas(30, 8)
        canvas.fit([(0.0, 0.0), (1.0, 1.0)])
        lines = canvas.render().splitlines()
        assert len(lines) == 10  # 8 rows + 2 borders
        assert all(len(line) == 32 for line in lines)

    def test_degenerate_extent_handled(self):
        canvas = AsciiCanvas(20, 6)
        canvas.fit([(2.0, 3.0)])  # a single point: zero-width window
        canvas.plot_point((2.0, 3.0), "X")
        assert "X" in canvas.render()


class TestSceneRendering:
    def test_render_scene_marks_both_agents(self):
        instance = Instance(r=0.5, x=3.0, y=2.0, phi=1.0, chi=-1, t=1.0)
        picture = render_scene(instance)
        assert "A" in picture and "B" in picture
        assert "-" in picture  # the canonical line

    def test_render_scene_without_canonical_line(self):
        instance = Instance(r=0.5, x=3.0, y=2.0)
        picture = render_scene(instance, show_canonical_line=False)
        assert "A" in picture and "B" in picture

    def test_render_simulation_with_traces(self):
        instance = Instance(r=0.5, x=2.0, y=1.0, phi=0.0, chi=-1, t=2.0)
        result = simulate(
            instance, OppositeChiralityLineSearch(), max_time=1e5, record_trajectories=True
        )
        picture = render_simulation(result)
        assert "rendezvous at" in picture
        assert "meeting near" in picture
        assert picture.count(".") > 5  # the recorded trajectory appears


class TestExport:
    def test_export_single_figure(self, tmp_path):
        paths = export_figure(figure1_canonical_line(), str(tmp_path))
        assert os.path.exists(paths["json"])
        with open(paths["json"]) as handle:
            payload = json.load(handle)
        assert "series" in payload

    def test_export_all_figures(self, tmp_path):
        exported = export_all_figures(str(tmp_path))
        assert len(exported) == 5
        assert all(os.path.exists(item["json"]) for item in exported)
