"""Tests for AlmostUniversalRV (Algorithm 1): structure and coverage (Theorem 3.2)."""

import itertools
import math

import pytest

from repro.algorithms.almost_universal import AlmostUniversalRV
from repro.algorithms.cow_walk import planar_cow_walk_duration, planar_cow_walk_segment_count
from repro.algorithms.schedules import CompactSchedule, PaperSchedule
from repro.core.instance import Instance
from repro.motion.instructions import Move, Wait
from repro.motion.localpath import LocalPath
from repro.sim.engine import simulate
from repro.sim.results import TerminationReason


class TestSchedules:
    def test_paper_schedule_constants(self):
        schedule = PaperSchedule()
        assert schedule.planar_resolution(3) == 3
        assert schedule.rotations(3) == 16
        assert schedule.rotation_step(3) == pytest.approx(math.pi / 8.0)
        assert schedule.block2_wait(3) == 8.0
        assert schedule.block2_run(3) == 8.0
        assert schedule.block3_wait(2) == 2.0**60
        assert schedule.block4_run(3) == 8.0
        assert schedule.block4_chunk(3) == pytest.approx(1.0 / 8.0)
        assert schedule.block4_wait(3) == 8.0

    def test_compact_schedule_smaller_waits(self):
        paper, compact = PaperSchedule(), CompactSchedule()
        for i in (2, 3, 4):
            assert compact.block3_wait(i) < paper.block3_wait(i)
            # Every other block keeps the paper's constants.
            assert compact.rotations(i) == paper.rotations(i)
            assert compact.block2_wait(i) == paper.block2_wait(i)
            assert compact.block4_chunk(i) == paper.block4_chunk(i)


class TestProgramStructure:
    def test_name_mentions_schedule(self):
        assert "paper" in AlmostUniversalRV().name
        assert "compact" in AlmostUniversalRV(CompactSchedule()).name

    def test_block1_is_rotated_planar_walks(self):
        algorithm = AlmostUniversalRV()
        block = LocalPath.from_instructions(algorithm._block1_type1(1))
        # 2**(i+1) = 4 planar walks of parameter 1, all returning to the start.
        assert block.is_closed(tol=1e-9)
        assert block.total_duration() == pytest.approx(4 * planar_cow_walk_duration(1))

    def test_block2_waits_runs_and_backtracks(self):
        algorithm = AlmostUniversalRV()
        instructions = list(algorithm._block2_type2(2))
        assert instructions[0] == Wait(4.0)
        path = LocalPath.from_instructions(instructions)
        # wait(4) + run for 4 + backtrack of at most 4.
        assert path.total_duration() <= 12.0 + 1e-9
        assert path.is_closed(tol=1e-9)

    def test_block3_wait_then_walk(self):
        algorithm = AlmostUniversalRV()
        instructions = list(algorithm._block3_type3(1))
        assert instructions[0] == Wait(2.0**15)
        path = LocalPath.from_instructions(instructions)
        assert path.total_duration() == pytest.approx(2.0**15 + planar_cow_walk_duration(1))
        assert path.is_closed(tol=1e-9)

    def test_block4_chunks_and_waits(self):
        algorithm = AlmostUniversalRV()
        instructions = list(algorithm._block4_type4(1))
        waits = [i for i in instructions if isinstance(i, Wait) and i.duration == 2.0]
        # 2**(2i) = 4 chunks, each followed by a wait of 2**i = 2.
        assert len(waits) == 4
        path = LocalPath.from_instructions(instructions)
        assert path.is_closed(tol=1e-9)

    def test_phase_concatenates_four_blocks(self):
        algorithm = AlmostUniversalRV()
        phase = LocalPath.from_instructions(algorithm.phase(1))
        blocks = (
            LocalPath.from_instructions(algorithm._block1_type1(1)).total_duration()
            + LocalPath.from_instructions(algorithm._block2_type2(1)).total_duration()
            + LocalPath.from_instructions(algorithm._block3_type3(1)).total_duration()
            + LocalPath.from_instructions(algorithm._block4_type4(1)).total_duration()
        )
        assert phase.total_duration() == pytest.approx(blocks)
        assert phase.is_closed(tol=1e-9)

    def test_max_phase_truncates_program(self):
        short = AlmostUniversalRV(max_phase=1)
        long_prefix = list(short.program())
        assert len(long_prefix) > 0
        # Phase 2 exists for the unbounded program: its prefix is strictly longer.
        unbounded_prefix = list(itertools.islice(AlmostUniversalRV().program(), len(long_prefix) + 10))
        assert len(unbounded_prefix) == len(long_prefix) + 10

    def test_program_is_anonymous(self, type4_instance):
        """The emitted stream must be identical for both agents."""
        algorithm = AlmostUniversalRV()
        a_stream = itertools.islice(
            algorithm.program_for(type4_instance, type4_instance.agent_a(), "A"), 200
        )
        b_stream = itertools.islice(
            algorithm.program_for(type4_instance, type4_instance.agent_b(), "B"), 200
        )
        assert list(a_stream) == list(b_stream)


class TestTheorem32Coverage:
    """Executable Theorem 3.2: the single algorithm meets on all four types."""

    def test_type1(self, type1_instance):
        result = simulate(type1_instance, AlmostUniversalRV(), max_time=1e12, max_segments=600_000)
        assert result.met

    def test_type2(self, type2_instance):
        result = simulate(type2_instance, AlmostUniversalRV(), max_time=1e12, max_segments=600_000)
        assert result.met

    def test_type3_needs_exact_timebase(self, type3_instance):
        result = simulate(
            type3_instance, AlmostUniversalRV(), max_time=1e45, max_segments=600_000,
            timebase="exact",
        )
        assert result.met

    def test_type4(self, type4_instance):
        result = simulate(type4_instance, AlmostUniversalRV(), max_time=1e12, max_segments=600_000)
        assert result.met

    def test_type4_different_speeds(self):
        instance = Instance(r=0.5, x=1.0, y=0.0, v=2.0, t=0.5)
        result = simulate(instance, AlmostUniversalRV(), max_time=1e12, max_segments=600_000)
        assert result.met

    def test_type1_rotated_mirrored(self):
        instance = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=-1, t=2.0)
        result = simulate(instance, AlmostUniversalRV(), max_time=1e12, max_segments=600_000)
        assert result.met

    def test_compact_schedule_also_covers(self, type4_instance, type2_instance):
        algorithm = AlmostUniversalRV(CompactSchedule())
        assert simulate(type4_instance, algorithm, max_time=1e12, max_segments=600_000).met
        assert simulate(type2_instance, algorithm, max_time=1e12, max_segments=600_000).met

    def test_infeasible_instance_never_meets(self, infeasible_instance):
        result = simulate(
            infeasible_instance, AlmostUniversalRV(), max_time=1e6, max_segments=150_000
        )
        assert not result.met
        # Theorem 3.1 lower bound: the distance can shrink by at most t.
        assert result.min_distance >= (
            infeasible_instance.initial_distance - infeasible_instance.t - 1e-9
        )

    def test_s1_boundary_not_guaranteed(self, s1_instance):
        """On the exception boundary the universal algorithm gets close (within
        any positive slack of r) but the zero-slack meeting is not guaranteed."""
        result = simulate(s1_instance, AlmostUniversalRV(), max_time=1e6, max_segments=150_000)
        if not result.met:
            assert result.min_distance >= s1_instance.r - 1e-9


class TestPhaseMemoization:
    def test_cached_phase_equals_generated_phase(self):
        from repro.algorithms.almost_universal import phase_instruction_list

        algorithm = AlmostUniversalRV(CompactSchedule())
        assert list(phase_instruction_list(algorithm.schedule, 1)) == list(algorithm.phase(1))

    def test_program_uses_cache_for_small_phases(self):
        from repro.algorithms.almost_universal import phase_instruction_list

        schedule = PaperSchedule()
        cached = phase_instruction_list(schedule, 1)
        program = AlmostUniversalRV(schedule).program()
        prefix = [next(program) for _ in range(len(cached))]
        assert prefix == list(cached)

    def test_deep_phases_not_materialized(self):
        from repro.algorithms.almost_universal import _phase_is_cacheable

        schedule = PaperSchedule()
        assert _phase_is_cacheable(schedule, 1)
        assert not _phase_is_cacheable(schedule, 8)

    def test_subclasses_bypass_cache(self):
        from repro.algorithms.almost_universal import _phase_is_cacheable

        class Tweaked(AlmostUniversalRV):
            def phase(self, i):
                yield Wait(1.0)

        tweaked = Tweaked(PaperSchedule())
        assert list(tweaked._phase_steps(1)) == [Wait(1.0)]
        assert tweaked.program_cache_key is None
