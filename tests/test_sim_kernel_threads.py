"""Threaded kernel-chunk dispatch: bit-parity, selection and wiring.

PR 4 added an opt-in thread pool over the kernel chunks of
:func:`repro.sim.rounds.solve_round`: chunks write disjoint output slices and
numpy releases the GIL, so threaded and serial dispatch are **bit-identical**
— only wall time depends on the setting.  Pinned here: exact equality of
every outcome field between ``kernel_threads=1`` and ``> 1`` runs of both
batch engines (with chunk sizes shrunk so the pool genuinely fans out),
selection priority (explicit argument > ``REPRO_KERNEL_THREADS`` > serial),
rejection of invalid counts, and the pass-through from the simulator facade
and the batch runner.
"""

import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.geometry.backends import THREADS_ENV_VAR, resolve_kernel_threads
from repro.parallel.runner import BatchRunner, BatchTask
from repro.sim import rounds
from repro.sim.batch import simulate_batch
from repro.sim.batch_asymmetric import simulate_batch_asymmetric
from repro.sim.engine import RendezvousSimulator

MAX_TIME = 1e5
MAX_SEGMENTS = 30_000

ALL_TYPES = (
    InstanceClass.TYPE_1,
    InstanceClass.TYPE_2,
    InstanceClass.TYPE_3,
    InstanceClass.TYPE_4,
)


def _campaign(count_per_type=6, seed=7):
    sampler = InstanceSampler(seed=seed)
    instances = []
    for cls in ALL_TYPES:
        instances.extend(sampler.batch_of_class(cls, count_per_type))
    return instances


@pytest.fixture
def small_chunks(monkeypatch):
    """Shrink the chunk targets so rounds split into many chunks and the
    thread pool genuinely runs concurrent kernel calls on this workload."""
    monkeypatch.setattr(rounds, "KERNEL_CHUNK_WINDOWS", 256)
    monkeypatch.setattr(rounds, "_MIN_THREADED_CHUNK", 32)


def _fields(result):
    """Every outcome scalar, compared *exactly* — the dispatch claims bit-parity."""
    return (
        result.met,
        result.meeting_time,
        result.termination,
        result.min_distance,
        result.min_distance_time,
        result.simulated_time,
        result.segments_a,
        result.segments_b,
        result.windows_processed,
    )


class TestResolveKernelThreads:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(THREADS_ENV_VAR, raising=False)
        assert resolve_kernel_threads() == 1

    def test_env_var_selection(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "3")
        assert resolve_kernel_threads() == 3

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "3")
        assert resolve_kernel_threads(2) == 2

    def test_blank_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "  ")
        assert resolve_kernel_threads() == 1

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(THREADS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="REPRO_KERNEL_THREADS"):
            resolve_kernel_threads()

    def test_non_positive_counts_rejected(self):
        for bad in (0, -2):
            with pytest.raises(ValueError, match="positive"):
                resolve_kernel_threads(bad)


class TestThreadedBitParity:
    def test_symmetric_engine(self, small_chunks):
        instances = _campaign()
        algorithm = get_algorithm("almost-universal-compact")
        serial = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        threaded = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            kernel_threads=3,
        )
        for s, t in zip(serial, threaded):
            assert _fields(s) == _fields(t)

    def test_asymmetric_engine(self, small_chunks):
        instances = _campaign(count_per_type=4, seed=13)
        algorithm = get_algorithm("almost-universal-compact")
        kwargs = dict(
            radius_a=[instance.r for instance in instances],
            radius_b=[instance.r * 0.4 for instance in instances],
            max_time=MAX_TIME,
            max_segments=MAX_SEGMENTS,
        )
        serial = simulate_batch_asymmetric(instances, algorithm, **kwargs)
        threaded = simulate_batch_asymmetric(
            instances, algorithm, kernel_threads=3, **kwargs
        )
        for s, t in zip(serial, threaded):
            assert s.frozen_agent == t.frozen_agent
            assert s.freeze_time == t.freeze_time
            assert s.freeze_distance == t.freeze_distance
            assert _fields(s.result) == _fields(t.result)

    def test_env_var_wiring(self, small_chunks, monkeypatch):
        instances = _campaign(count_per_type=3, seed=3)
        algorithm = get_algorithm("almost-universal-compact")
        monkeypatch.delenv(THREADS_ENV_VAR, raising=False)
        serial = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        monkeypatch.setenv(THREADS_ENV_VAR, "2")
        threaded = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        for s, t in zip(serial, threaded):
            assert _fields(s) == _fields(t)

    def test_invalid_thread_counts_rejected_by_engines(self):
        instance = Instance(r=0.5, x=2.0, y=0.0)
        algorithm = get_algorithm("stay-put")
        with pytest.raises(ValueError):
            simulate_batch([instance], algorithm, kernel_threads=0)
        with pytest.raises(ValueError):
            simulate_batch_asymmetric([instance], algorithm, kernel_threads=-1)


class TestBackendThreadSafety:
    def test_backend_declarations(self):
        from repro.geometry.backends import NumexprBackend, NumpyBackend

        assert NumpyBackend.thread_safe
        # numexpr shares evaluate state (not thread-safe before 2.8.4) and
        # multi-threads internally; the chunked dispatch must not fan it out.
        assert not NumexprBackend.thread_safe

    def test_non_thread_safe_backend_stays_serial(self, small_chunks, monkeypatch):
        from repro.geometry.backends import NumpyBackend

        class SerialOnly(NumpyBackend):
            name = "serial-only-test"
            thread_safe = False

        instances = _campaign(count_per_type=2, seed=5)
        algorithm = get_algorithm("almost-universal-compact")
        serial = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            kernel_threads=1,
        )

        def forbidden(threads):
            raise AssertionError(
                "thread pool engaged for a backend that declares thread_safe=False"
            )

        monkeypatch.setattr(rounds, "_chunk_executor", forbidden)
        gated = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            kernel_threads=3, backend=SerialOnly(),
        )
        for s, t in zip(serial, gated):
            assert _fields(s) == _fields(t)

    def test_thread_pool_actually_engaged_for_numpy(self, small_chunks, monkeypatch):
        engaged = []
        real = rounds._chunk_executor
        monkeypatch.setattr(
            rounds, "_chunk_executor",
            lambda threads: engaged.append(threads) or real(threads),
        )
        simulate_batch(
            _campaign(count_per_type=2, seed=5),
            get_algorithm("almost-universal-compact"),
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS, kernel_threads=3,
        )
        assert engaged and all(threads == 3 for threads in engaged)


class TestWiring:
    def test_simulator_facade_passes_kernel_threads(self, small_chunks, type4_instance):
        algorithm = get_algorithm("almost-universal-compact")
        serial = RendezvousSimulator(
            max_time=MAX_TIME, engine="vectorized"
        ).run(type4_instance, algorithm)
        threaded = RendezvousSimulator(
            max_time=MAX_TIME, engine="vectorized", kernel_threads=2
        ).run(type4_instance, algorithm)
        assert _fields(serial) == _fields(threaded)

    def test_batch_runner_routes_kernel_threads(self):
        instances = _campaign(count_per_type=2, seed=31)
        tasks = [
            BatchTask.make(
                instance, "almost-universal-compact",
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS, kernel_threads=2,
            )
            for instance in instances
        ]
        baseline = [
            BatchTask.make(
                instance, "almost-universal-compact",
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            )
            for instance in instances
        ]
        # kernel_threads is a vectorizable option: the strict engine accepts it.
        threaded = BatchRunner(engine="vectorized").run(tasks)
        serial = BatchRunner(engine="vectorized").run(baseline)
        for s, t in zip(serial, threaded):
            assert s["met"] == t["met"]
            assert s["meeting_time"] == t["meeting_time"]
            assert s["min_distance"] == t["min_distance"]
