"""The durable job queue: journal replay, monotonic transitions, dedup, backpressure.

The queue's crash-safety story is pinned at the unit level here (every
acknowledged mutation survives a reopen; torn tails are skipped losslessly);
the process-level ``kill -9`` versions live in ``test_crash_consistency.py``.
"""

import json
import os

import pytest

from repro.campaign import CampaignArm, CampaignSpec
from repro.service import JOB_STATES, TERMINAL_STATES, JobQueue, QueueFull, ServiceError


def make_spec(**overrides):
    base = dict(
        name="queue-unit",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1",),
        instances_per_cell=4,
        seed=3,
        simulator={"max_time": 1e5, "max_segments": 20_000},
        shard_size=2,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSubmission:
    def test_submit_creates_and_journals(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, created = queue.submit(make_spec())
        assert created
        assert job.state == "submitted"
        assert job.digest == make_spec().digest()
        records = queue.journal_records()
        assert records[-1]["state"] == "submitted"
        assert records[-1]["spec"]["name"] == "queue-unit"

    def test_duplicate_digest_dedups_to_one_job_and_store(self, tmp_path):
        queue = JobQueue(tmp_path)
        first, created_first = queue.submit(make_spec())
        # A different *name* changes nothing: name is excluded from the digest.
        second, created_second = queue.submit(make_spec(name="another-name"))
        assert created_first and not created_second
        assert first is second
        assert queue.store_path(first.digest) == queue.store_path(second.digest)
        assert len(queue.jobs()) == 1
        # The dedup never journals a second submitted record.
        assert sum(1 for r in queue.journal_records() if r.get("state") == "submitted") == 1

    def test_completed_job_dedups_as_cache_hit(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        queue.mark_running(job.digest)
        queue.mark_complete(job.digest, stats={"rows_computed": 4})
        again, created = queue.submit(make_spec())
        assert not created
        assert again.state == "complete"

    def test_depth_limit_rejects_explicitly(self, tmp_path):
        queue = JobQueue(tmp_path, depth_limit=2)
        queue.submit(make_spec(seed=1))
        queue.submit(make_spec(seed=2))
        with pytest.raises(QueueFull, match="depth limit 2"):
            queue.submit(make_spec(seed=3))
        # Terminal jobs free capacity: the gauge counts unfinished work only.
        job = queue.jobs()[0]
        queue.mark_running(job.digest)
        queue.mark_complete(job.digest)
        accepted, created = queue.submit(make_spec(seed=3))
        assert created and accepted.state == "submitted"

    def test_submit_rejects_non_spec(self, tmp_path):
        with pytest.raises(ServiceError, match="CampaignSpec"):
            JobQueue(tmp_path).submit({"name": "not-a-spec"})

    def test_bad_depth_limit_rejected(self, tmp_path):
        for bad in (0, -1, True, 1.5):
            with pytest.raises(ServiceError, match="depth_limit"):
                JobQueue(tmp_path, depth_limit=bad)


class TestTransitions:
    def test_lifecycle_and_attempt_counting(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        assert queue.mark_running(job.digest).attempts == 1
        # A retry is running -> running with the attempt bumped.
        assert queue.mark_running(job.digest).attempts == 2
        done = queue.mark_complete(job.digest, stats={"rows_computed": 4})
        assert done.state == "complete"
        assert done.stats == {"rows_computed": 4}

    def test_terminal_states_are_final(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        queue.mark_running(job.digest)
        queue.mark_quarantined(job.digest, error="boom")
        for move in (
            lambda: queue.mark_running(job.digest),
            lambda: queue.mark_complete(job.digest),
            lambda: queue.mark_quarantined(job.digest, error="again"),
        ):
            with pytest.raises(ServiceError, match="invalid job transition"):
                move()

    def test_backwards_and_unknown_transitions_refused(self, tmp_path):
        queue = JobQueue(tmp_path)
        with pytest.raises(ServiceError, match="unknown job"):
            queue.mark_running("no-such-digest")
        job, _ = queue.submit(make_spec())
        # complete straight from submitted is allowed (rank only increases) —
        # but the refused journal line must never have been written.
        queue.mark_complete(job.digest)
        before = len(queue.journal_records())
        with pytest.raises(ServiceError):
            queue.mark_running(job.digest)
        assert len(queue.journal_records()) == before

    def test_state_tables_are_consistent(self):
        assert set(TERMINAL_STATES) <= set(JOB_STATES)


class TestReplay:
    def test_reopen_reconstructs_everything(self, tmp_path):
        queue = JobQueue(tmp_path)
        a, _ = queue.submit(make_spec(seed=1))
        b, _ = queue.submit(make_spec(seed=2))
        queue.mark_running(a.digest)
        queue.mark_complete(a.digest, stats={"rows_computed": 4})
        queue.mark_running(b.digest)

        reopened = JobQueue(tmp_path)
        assert [job.digest for job in reopened.jobs()] == [a.digest, b.digest]
        ra, rb = reopened.jobs()
        assert ra.state == "complete" and ra.stats == {"rows_computed": 4}
        assert rb.state == "running" and rb.attempts == 1
        # The crash orphan is eligible again; the finished job is not.
        assert [job.digest for job in reopened.eligible()] == [b.digest]
        assert reopened.torn_lines == 0
        assert reopened.invalid_records == 0

    def test_torn_tail_is_skipped_losslessly(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        queue.mark_running(job.digest)
        with open(queue.journal_path, "a") as handle:
            handle.write('{"event": "job", "state": "comp')  # torn mid-write
        reopened = JobQueue(tmp_path)
        assert reopened.torn_lines == 1
        # The torn transition was never acknowledged: the job is still running.
        assert reopened.job(job.digest).state == "running"

    def test_torn_tail_fuzz(self, tmp_path):
        """Every prefix truncation of the final line replays without error."""
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        queue.mark_running(job.digest)
        queue.mark_complete(job.digest)
        full = open(queue.journal_path, "rb").read()
        lines = full.splitlines(keepends=True)
        body, last = b"".join(lines[:-1]), lines[-1]
        for cut in range(len(last)):
            with open(queue.journal_path, "wb") as handle:
                handle.write(body + last[:cut])
            reopened = JobQueue(tmp_path)
            state = reopened.job(job.digest).state
            # Torn tail => the final (complete) transition may be lost, but
            # never a corrupted in-between state.
            assert state in ("running", "complete")
            assert reopened.invalid_records == 0
            # Appending over the torn tail must isolate the fragment, not
            # merge with it: the new record replays intact.
            if state == "running":
                reopened.mark_complete(job.digest)
                final = JobQueue(tmp_path)
                assert final.job(job.digest).state == "complete"
                assert final.invalid_records == 0

    def test_invalid_records_skipped_not_fatal(self, tmp_path):
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        with open(queue.journal_path, "a") as handle:
            # A transition for an unknown job, a backwards transition after
            # completion, a wrong event, and a non-dict line.
            handle.write(json.dumps({"event": "job", "state": "running", "digest": "ghost"}) + "\n")
            handle.write(json.dumps({"event": "wat"}) + "\n")
            handle.write(json.dumps([1, 2]) + "\n")
        reopened = JobQueue(tmp_path)
        assert reopened.invalid_records == 3
        assert reopened.job(job.digest).state == "submitted"

    def test_daemon_lifecycle_records(self, tmp_path):
        queue = JobQueue(tmp_path)
        assert queue.clean_shutdown is None
        queue.record_daemon_start()
        assert JobQueue(tmp_path).clean_shutdown is False
        queue.record_daemon_shutdown()
        assert JobQueue(tmp_path).clean_shutdown is True

    def test_journal_is_fsynced_per_append(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        queue = JobQueue(tmp_path)
        job, _ = queue.submit(make_spec())
        queue.mark_running(job.digest)
        assert len(synced) >= 2
