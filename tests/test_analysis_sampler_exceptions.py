"""Tests for the stratified instance samplers and the S1/S2 constructors."""

import math

import numpy as np
import pytest

from repro.analysis.exceptions import (
    FEASIBLE_DIMENSIONS,
    S1_FREE_DIMENSIONS,
    S2_FREE_DIMENSIONS,
    boundary_margin,
    in_s1,
    in_s2,
    make_s1_instance,
    make_s2_instance,
    perturb_off_boundary,
)
from repro.analysis.sampler import (
    InstanceSampler,
    SamplerConfig,
    sample_instance,
    sample_instance_of_class,
    sample_instances,
)
from repro.core.classification import InstanceClass, classify
from repro.core.feasibility import is_feasible


class TestSamplerConfig:
    def test_defaults_valid(self):
        SamplerConfig()

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            SamplerConfig(min_radius=0.0)
        with pytest.raises(ValueError):
            SamplerConfig(min_distance=5.0, max_distance=1.0)
        with pytest.raises(ValueError):
            SamplerConfig(min_radius=2.0, max_radius=3.0, min_distance=1.0)


class TestStratifiedSampling:
    @pytest.mark.parametrize("cls", list(InstanceClass))
    def test_every_class_is_reachable(self, cls):
        sampler = InstanceSampler(seed=42)
        for _ in range(5):
            instance = sampler.of_class(cls)
            assert classify(instance) is cls

    def test_batch_of_class(self):
        batch = InstanceSampler(seed=1).batch_of_class(InstanceClass.TYPE_3, 7)
        assert len(batch) == 7
        assert all(classify(inst) is InstanceClass.TYPE_3 for inst in batch)

    def test_reproducibility(self):
        a = InstanceSampler(seed=5).batch_of_class(InstanceClass.TYPE_1, 3)
        b = InstanceSampler(seed=5).batch_of_class(InstanceClass.TYPE_1, 3)
        assert a == b

    def test_different_seeds_differ(self):
        a = InstanceSampler(seed=5).uniform()
        b = InstanceSampler(seed=6).uniform()
        assert a != b

    def test_uniform_respects_config_ranges(self):
        config = SamplerConfig(min_distance=2.0, max_distance=3.0, min_radius=0.3, max_radius=0.4)
        sampler = InstanceSampler(config, seed=0)
        for _ in range(20):
            instance = sampler.uniform()
            assert 2.0 <= instance.initial_distance <= 3.0 + 1e-9
            assert 0.3 <= instance.r <= 0.4

    def test_module_level_helpers(self):
        assert sample_instance(seed=3) == sample_instance(seed=3)
        batch = sample_instances(4, seed=3)
        assert len(batch) == 4
        inst = sample_instance_of_class(InstanceClass.TYPE_2, seed=3)
        assert classify(inst) is InstanceClass.TYPE_2

    def test_accepts_numpy_generator(self):
        rng = np.random.default_rng(0)
        sampler = InstanceSampler(seed=rng)
        assert sampler.rng is rng

    def test_infeasible_samples_are_truly_infeasible(self):
        sampler = InstanceSampler(seed=9)
        for _ in range(10):
            assert not is_feasible(sampler.infeasible())


class TestExceptionSets:
    def test_make_s1(self):
        instance = make_s1_instance(3.0, 4.0, 1.0)
        assert instance.t == pytest.approx(4.0)
        assert in_s1(instance)
        assert not in_s2(instance)
        assert classify(instance) is InstanceClass.S1_BOUNDARY

    def test_make_s1_validation(self):
        with pytest.raises(ValueError):
            make_s1_instance(1.0, 0.0, 2.0)  # r >= dist
        with pytest.raises(ValueError):
            make_s1_instance(1.0, 0.0, 0.0)

    def test_make_s2(self):
        instance = make_s2_instance(2.0, 1.0, 0.0, 0.5)
        assert instance.chi == -1
        assert instance.t == pytest.approx(1.5)
        assert in_s2(instance)
        assert classify(instance) is InstanceClass.S2_BOUNDARY

    def test_make_s2_rotated(self):
        instance = make_s2_instance(2.0, 1.0, math.pi / 2.0, 0.5)
        assert in_s2(instance)

    def test_make_s2_validation(self):
        # Projection distance 0 (agents symmetric about L) with positive r
        # would need a negative delay.
        with pytest.raises(ValueError):
            make_s2_instance(0.0, 3.0, 0.0, 0.5)
        with pytest.raises(ValueError):
            make_s2_instance(2.0, 1.0, 0.0, -0.1)

    def test_s1_instances_feasible_but_not_covered(self):
        instance = make_s1_instance(3.0, 4.0, 1.0)
        assert is_feasible(instance)
        assert not classify(instance).is_covered_by_universal

    def test_perturbation_moves_off_boundary(self):
        boundary = make_s1_instance(3.0, 4.0, 1.0)
        assert classify(perturb_off_boundary(boundary, 0.5)) is InstanceClass.TYPE_2
        assert classify(perturb_off_boundary(boundary, -0.5)) is InstanceClass.INFEASIBLE
        s2 = make_s2_instance(2.0, 1.0, 0.0, 0.5)
        assert classify(perturb_off_boundary(s2, 0.5)) is InstanceClass.TYPE_1

    def test_perturbation_validation(self):
        with pytest.raises(ValueError):
            perturb_off_boundary(make_s1_instance(3.0, 4.0, 1.0), -100.0)

    def test_boundary_margin(self):
        assert boundary_margin(make_s1_instance(3.0, 4.0, 1.0)) == pytest.approx(0.0)
        assert boundary_margin(make_s2_instance(2.0, 1.0, 0.0, 0.5)) == pytest.approx(0.0)
        assert boundary_margin(sample_instance_of_class(InstanceClass.TYPE_3, seed=0)) is None

    def test_dimension_constants(self):
        assert FEASIBLE_DIMENSIONS == 7
        assert S1_FREE_DIMENSIONS == 3
        assert S2_FREE_DIMENSIONS == 4
