"""The on-disk columnar store: atomicity, manifest recovery, streaming reads.

The store's contract is what makes campaigns crash-safe: a shard data file
exists completely or not at all, a manifest line never references missing
data, and a half-dead directory (torn manifest line, deleted shard file,
corrupted bytes) degrades to "those shards re-run" — never to a wrong or
partial aggregate silently standing in for a complete one.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.campaign import (
    CampaignArm,
    CampaignError,
    CampaignSpec,
    CampaignStore,
    plan_shards,
)
from repro.campaign.store import RESULT_COLUMNS, records_to_columns


def make_spec(**overrides):
    base = dict(
        name="store-unit",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1",),
        instances_per_cell=6,
        seed=2,
        simulator={"max_time": 1e5, "max_segments": 20_000},
        shard_size=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def fake_record(met=True, **overrides):
    record = {
        "met": met,
        "termination": "rendezvous" if met else "max-time",
        "meeting_time": 2.5 if met else None,
        "min_distance": 0.4,
        "min_distance_time": 1.5,
        "simulated_time": 2.5,
        "segments_a": 3,
        "segments_b": 4,
        "windows": 7,
        "instance_r": 0.5,
        "instance_x": 1.0,
        "instance_y": 1.0,
        "instance_phi": 0.0,
        "instance_tau": 1.0,
        "instance_v": 1.0,
        "instance_t": 0.0,
        "instance_chi": 1,
    }
    record.update(overrides)
    return record


@pytest.fixture
def store(tmp_path):
    store = CampaignStore(str(tmp_path / "camp"))
    store.initialize(make_spec())
    return store


def write_all(store, spec=None):
    spec = spec if spec is not None else store.load_spec()
    plan = plan_shards(spec)
    for shard in plan:
        columns = records_to_columns(shard, [fake_record() for _ in range(shard.count)])
        store.write_shard(shard, columns, wall_seconds=0.1)
    return plan


class TestInitialize:
    def test_creates_spec_and_reopens_idempotently(self, store):
        assert store.exists()
        assert store.load_spec() == make_spec()
        store.initialize(make_spec(name="renamed"))  # same digest: fine

    def test_refuses_a_different_campaign(self, store):
        with pytest.raises(CampaignError, match="refusing"):
            store.initialize(make_spec(seed=3))

    def test_load_without_spec_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="not a campaign directory"):
            CampaignStore(str(tmp_path / "nothing")).load_spec()


class TestWriteAndRead:
    def test_write_then_completed_and_read(self, store):
        plan = write_all(store)
        done = store.completed()
        assert set(done) == {shard.shard_id for shard in plan}
        columns = store.read_shard(plan[0].shard_id)
        assert set(columns) == set(RESULT_COLUMNS)
        assert columns["met"].all()
        assert (columns["position"] == np.arange(plan[0].count)).all()

    def test_records_to_columns_encodes_sentinels(self):
        shard = plan_shards(make_spec())[0]
        columns = records_to_columns(
            shard,
            [
                fake_record(),
                fake_record(
                    met=False, meeting_time=None, min_distance_time=None,
                    frozen_agent="B", freeze_time=1.25, freeze_distance=0.75,
                ),
                fake_record(min_distance=float("inf")),
            ],
        )
        assert columns["met"].tolist() == [True, False, True]
        assert np.isnan(columns["meeting_time"][1])
        assert np.isnan(columns["min_distance_time"][1])
        assert columns["frozen"].tolist() == [-1, 1, -1]
        assert columns["freeze_time"][1] == 1.25
        assert np.isinf(columns["min_distance"][2])

    def test_row_count_mismatch_rejected(self, store):
        shard = plan_shards(store.load_spec())[0]
        columns = records_to_columns(shard, [fake_record()] * (shard.count - 1))
        with pytest.raises(CampaignError, match="rows"):
            store.write_shard(shard, columns)

    def test_unknown_or_missing_columns_rejected(self, store):
        shard = plan_shards(store.load_spec())[0]
        columns = records_to_columns(shard, [fake_record()] * shard.count)
        columns["bogus"] = np.zeros(shard.count)
        with pytest.raises(CampaignError, match="bogus"):
            store.write_shard(shard, columns)
        del columns["bogus"], columns["met"]
        with pytest.raises(CampaignError, match="met"):
            store.write_shard(shard, columns)

    def test_no_temp_files_survive(self, store):
        write_all(store)
        shard_dir = os.path.join(store.directory, CampaignStore.SHARD_DIR)
        assert not [name for name in os.listdir(shard_dir) if name.startswith(".tmp")]


class TestManifestRecovery:
    def test_torn_final_line_is_skipped(self, store):
        plan = write_all(store)
        with open(store.manifest_path, "a") as handle:
            handle.write('{"shard_id": "deadbeef", "rows":')  # crash mid-append
        assert set(store.completed()) == {shard.shard_id for shard in plan}

    def test_record_without_data_file_is_dropped(self, store):
        plan = write_all(store)
        os.unlink(store.shard_path(plan[0].shard_id))
        assert plan[0].shard_id not in store.completed()
        assert plan[1].shard_id in store.completed()

    def test_checksum_verification_drops_corrupt_shards(self, store):
        plan = write_all(store)
        with open(store.shard_path(plan[0].shard_id), "r+b") as handle:
            handle.seek(0)
            handle.write(b"corrupt!")
        assert plan[0].shard_id in store.completed()  # default trusts the manifest
        assert plan[0].shard_id not in store.completed(verify=True)
        problems = store.verify(plan)
        assert any("checksum" in problem for problem in problems)

    def test_verify_reports_incomplete_shards(self, store):
        plan = plan_shards(store.load_spec())
        problems = store.verify(plan)
        assert len(problems) == len(plan)
        assert all("incomplete" in problem for problem in problems)

    def test_manifest_records_carry_bookkeeping(self, store):
        write_all(store)
        for record in store.manifest_records():
            assert set(record) >= {
                "shard_id", "index", "arm", "cls", "start", "rows",
                "sha256", "wall_seconds", "completed_utc",
            }


class TestReaders:
    def test_export_concatenates_in_plan_order(self, store):
        plan = write_all(store)
        columns = store.export_columns(plan)
        assert len(columns["met"]) == sum(shard.count for shard in plan)
        assert columns["position"].tolist() == [0, 1, 2, 3, 4, 5]

    def test_export_refuses_partial_campaigns(self, store):
        plan = write_all(store)
        os.unlink(store.shard_path(plan[-1].shard_id))
        with pytest.raises(CampaignError, match="incomplete"):
            store.export_columns(plan)

    def test_aggregate_streams_per_cell(self, store):
        plan = write_all(store)
        cells = store.aggregate(plan)
        assert set(cells) == {(0, 0)}
        row = cells[(0, 0)].as_row()
        assert row["count"] == 6
        assert row["success_rate"] == 1.0
        assert row["meeting_time_mean"] == pytest.approx(2.5)
        assert row["budget_exhausted"] == 0

    def test_aggregate_counts_budget_exhaustion(self, store):
        spec = store.load_spec()
        plan = plan_shards(spec)
        for shard in plan:
            records = [
                fake_record(met=False, meeting_time=None, termination="max-time")
                for _ in range(shard.count)
            ]
            store.write_shard(shard, records_to_columns(shard, records))
        row = store.aggregate(plan)[(0, 0)].as_row()
        assert row["successes"] == 0
        assert row["budget_exhausted"] == 6
        assert row["meeting_time_mean"] is None


class TestLastRecordWins:
    """Duplicate manifest lines (concurrent appenders racing a lease takeover)
    must count each shard exactly once everywhere."""

    def duplicate_first_record(self, store):
        record = dict(store.manifest_records()[0])
        record["wall_seconds"] = 99.0  # only bookkeeping differs; data is identical
        with open(store.manifest_path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def test_completed_keeps_the_last_record(self, store):
        plan = write_all(store)
        duplicate = self.duplicate_first_record(store)
        done = store.completed()
        assert len(done) == len(plan)
        assert done[duplicate["shard_id"]]["wall_seconds"] == 99.0

    def test_aggregate_counts_duplicated_shards_once(self, store):
        plan = write_all(store)
        self.duplicate_first_record(store)
        row = store.aggregate(plan)[(0, 0)].as_row()
        assert row["count"] == 6  # not 9

    def test_status_rows_totals_do_not_double_count(self, store):
        from repro.campaign import status_rows

        write_all(store)
        self.duplicate_first_record(store)
        status = status_rows(store.directory)
        assert status["rows_stored"] == 6
        assert status["shards_complete"] == 2

    def test_export_is_unchanged_by_duplicates(self, store):
        plan = write_all(store)
        before = store.export_columns(plan)
        self.duplicate_first_record(store)
        after = store.export_columns(plan)
        for name in before:
            assert before[name].tobytes() == after[name].tobytes()


class TestQuarantineLedger:
    def test_quarantine_roundtrip(self, store):
        plan = plan_shards(store.load_spec())
        entry = store.quarantine(plan[0], error="Traceback: boom", attempts=3)
        stored = store.failed_shards()[plan[0].shard_id]
        assert stored == entry
        assert stored["attempts"] == 3
        assert "boom" in stored["error"]

    def test_clear_failed_is_idempotent(self, store):
        plan = plan_shards(store.load_spec())
        store.quarantine(plan[0], error="x", attempts=1)
        store.clear_failed(plan[0].shard_id)
        store.clear_failed(plan[0].shard_id)
        assert store.failed_shards() == {}

    def test_unreadable_ledger_entry_surfaces_as_stub(self, store):
        plan = plan_shards(store.load_spec())
        store.quarantine(plan[0], error="x", attempts=1)
        with open(store.failed_path(plan[0].shard_id), "w") as handle:
            handle.write("{not json")
        entry = store.failed_shards()[plan[0].shard_id]
        assert entry["error"] == "unreadable ledger entry"


class TestDoctor:
    def test_healthy_store_is_clean_and_complete(self, store):
        write_all(store)
        report = store.doctor()
        assert report["clean"] and report["complete"]
        assert report["healthy"] == report["shards_planned"]
        assert report["incomplete"] == []

    def test_partial_store_is_clean_but_incomplete(self, store):
        plan = plan_shards(store.load_spec())
        columns = records_to_columns(plan[0], [fake_record() for _ in range(plan[0].count)])
        store.write_shard(plan[0], columns)
        report = store.doctor()
        assert report["clean"]
        assert not report["complete"]
        assert report["incomplete"] == [shard.shard_id for shard in plan[1:]]

    def test_corrupt_shard_detected_and_repaired(self, store):
        plan = write_all(store)
        with open(store.shard_path(plan[0].shard_id), "r+b") as handle:
            handle.write(b"corrupt!")
        report = store.doctor()
        assert report["corrupt"] == [plan[0].shard_id]
        assert not report["clean"]

        repaired = store.doctor(repair=True)
        assert f"deleted shard {plan[0].shard_id}" in repaired["repaired"]
        assert repaired["clean"]
        # Resume now recomputes exactly the deleted shard.
        assert store.doctor()["incomplete"] == [plan[0].shard_id]

    def test_orphaned_data_file_detected_and_repaired(self, store):
        write_all(store)
        orphan = store.shard_path("deadbeefdeadbeef")
        with open(orphan, "wb") as handle:
            handle.write(b"not even npz")
        report = store.doctor()
        assert report["orphaned"] == ["deadbeefdeadbeef"]
        assert not report["clean"]
        store.doctor(repair=True)
        assert not os.path.exists(orphan)

    def test_stale_lease_detected_and_repaired(self, store):
        from repro.campaign.leases import LeaseManager

        write_all(store)
        leases = LeaseManager(store.lease_dir, owner="dead-runner")
        leases.acquire("some-shard")
        past = time.time() - 3600.0
        os.utime(leases.lease_path("some-shard"), (past, past))
        report = store.doctor()
        assert report["stale_leases"] == ["some-shard"]
        assert not report["clean"]
        repaired = store.doctor(repair=True)
        assert "removed stale lease some-shard" in repaired["repaired"]
        assert store.doctor()["stale_leases"] == []

    def test_fresh_lease_reported_active_and_never_repaired(self, store):
        from repro.campaign.leases import LeaseManager

        write_all(store)
        leases = LeaseManager(store.lease_dir, owner="live-runner")
        leases.acquire("some-shard")
        report = store.doctor(repair=True)
        assert report["active_leases"] == ["some-shard"]
        assert os.path.exists(leases.lease_path("some-shard"))
        assert report["clean"]

    def test_quarantined_shard_flags_and_repair_clears(self, store):
        plan = write_all(store)
        store.quarantine(plan[0], error="poison", attempts=3)
        report = store.doctor()
        assert report["quarantined"] == [plan[0].shard_id]
        assert not report["clean"]
        repaired = store.doctor(repair=True)
        assert f"cleared quarantine {plan[0].shard_id}" in repaired["repaired"]
        assert store.failed_shards() == {}

    def test_wrong_row_count_detected(self, store):
        plan = write_all(store)
        # Rewrite the manifest claiming the wrong row count for shard 0 while
        # keeping the checksum honest (outside edit of the manifest).
        records = store.manifest_records()
        records[0]["rows"] = 99
        with open(store.manifest_path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        report = store.doctor()
        assert report["wrong_rows"] == [plan[0].shard_id]
        assert not report["clean"]


class TestStatusLeaseSurfacing:
    """`status_rows` carries lease health and the quarantined shard list, so
    `campaign status` and the service status endpoint show a wedged or
    degraded campaign without a separate doctor run."""

    def test_quiet_store_reports_zero_lease_activity(self, store):
        from repro.campaign import status_rows

        write_all(store)
        status = status_rows(store.directory)
        assert status["leases_active"] == 0
        assert status["leases_stale"] == 0
        assert status["quarantined"] == []

    def test_active_stale_and_quarantined_all_surface(self, store):
        import os
        import time

        from repro.campaign import status_rows
        from repro.campaign.leases import LeaseManager

        plan = plan_shards(store.load_spec())
        store.quarantine(plan[1], error="poison", attempts=3)
        leases = LeaseManager(store.lease_dir, stale_after=60.0)
        assert leases.acquire(plan[0].shard_id)
        stale = LeaseManager(store.lease_dir, stale_after=60.0)
        assert stale.acquire("ancient-shard")
        lease_path = os.path.join(store.lease_dir, "ancient-shard.lease")
        old = time.time() - 3600
        os.utime(lease_path, (old, old))

        status = status_rows(store.directory, lease_timeout=60.0)
        assert status["leases_active"] == 1
        assert status["leases_stale"] == 1
        assert status["quarantined"] == [plan[1].shard_id]
        assert status["shards_quarantined"] == 1
