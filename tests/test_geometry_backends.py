"""Backend registry behaviour and cross-backend kernel parity.

The kernel backends are interchangeable implementations of the fused window
kernel: every backend available in the environment must reproduce the numpy
reference's verdicts exactly and its offsets/minima to 1e-9 relative, the
selection rules (explicit > environment variable > numpy default) must hold,
and unavailable backends must degrade silently to numpy so a campaign
configured for numexpr still runs on a machine without it.
"""

import math

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.geometry import backends
from repro.geometry.backends import (
    ENV_VAR,
    KernelBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
)
from repro.geometry.closest_approach import (
    fused_window_batch,
    fused_window_batch_dual,
)
from repro.sim.batch import simulate_batch


def _window_problems(count=512, seed=3):
    """A spread of window columns covering hits, misses, statics and grazes."""
    rng = np.random.default_rng(seed)
    rel_x = rng.uniform(-40.0, 40.0, count)
    rel_y = rng.uniform(-40.0, 40.0, count)
    rvel_x = rng.uniform(-4.0, 4.0, count)
    rvel_y = rng.uniform(-4.0, 4.0, count)
    rvel_x[::7] = 0.0  # static relative motion lanes
    rvel_y[::7] = 0.0
    radius = rng.uniform(0.05, 6.0, count)
    radius[::11] = 0.0  # exact-contact lanes
    second = radius * rng.uniform(1.0, 3.0, count)
    durations = rng.uniform(0.0, 30.0, count)
    return rel_x, rel_y, rvel_x, rvel_y, radius, second, durations


class TestRegistry:
    def test_numpy_is_registered_and_default(self):
        assert "numpy" in registered_backends()
        assert "numpy" in available_backends()
        assert isinstance(get_backend(), KernelBackend)
        assert get_backend().name == "numpy"
        assert get_backend("numpy") is get_backend("numpy")  # cached instance

    def test_numexpr_is_registered(self):
        # Registered regardless of availability; available only when the
        # library imports.
        assert "numexpr" in registered_backends()

    def test_numba_is_registered(self):
        # Same contract as numexpr: always registered, available only when
        # the library imports, degrading silently to numpy otherwise — the
        # parity parametrization below picks it up automatically wherever
        # numba exists.
        assert "numba" in registered_backends()
        if "numba" not in available_backends():
            assert get_backend("numba").name == "numpy"

    def test_numba_declares_thread_safety(self):
        # The chunked dispatch consults this before fanning out; a silent
        # default change would re-enable threading for an unsafe backend.
        assert backends.NumbaBackend.thread_safe is True

    def test_numba_kernel_bodies_match_numpy_without_numba(self, monkeypatch):
        """Run the jitted loop bodies as plain Python via a passthrough njit.

        The dev image has no numba, so without this the kernel bodies would
        first execute on some user's machine.  A fake ``numba`` module whose
        ``njit`` returns the function unchanged exercises every line of
        ``_compile_numba_kernels`` and ``NumbaBackend.solve`` and pins the
        loops to the numpy backend's exact outputs (they restate the same
        float operations, so equality is bitwise).
        """
        import sys
        import types

        fake = types.ModuleType("numba")
        fake.njit = lambda *args, **kwargs: (lambda fn: fn)
        monkeypatch.setitem(sys.modules, "numba", fake)
        monkeypatch.setattr(backends, "_NUMBA_KERNELS", None)

        rel_x, rel_y, rvel_x, rvel_y, radius, second, durations = _window_problems()
        reference = NumpyBackend()
        subject = backends.NumbaBackend()
        assert backends.NumbaBackend.is_available()
        for second_radius in (None, second, radius):
            for track in (True, False):
                ours = subject.solve(
                    rel_x, rel_y, rvel_x, rvel_y, radius, second_radius,
                    durations, track,
                )
                theirs = reference.solve(
                    rel_x, rel_y, rvel_x, rvel_y, radius, second_radius,
                    durations, track,
                )
                for mine, ref in zip(ours, theirs):
                    if ref is None:
                        assert mine is None
                    else:
                        assert np.array_equal(mine, ref, equal_nan=True)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda-warp-drive")

    def test_environment_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert get_backend().name == "numpy"
        monkeypatch.setenv(ENV_VAR, "no-such-backend")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend()

    def test_unavailable_backend_degrades_to_numpy(self, monkeypatch):
        monkeypatch.setattr(
            backends.NumexprBackend, "is_available", classmethod(lambda cls: False)
        )
        assert "numexpr" not in available_backends()
        assert get_backend("numexpr").name == "numpy"
        # The whole engine path accepts the unavailable name and still runs.
        instance = InstanceSampler(seed=4).batch_of_class(InstanceClass.TYPE_1, 1)[0]
        result = simulate_batch(
            [instance], get_algorithm("almost-universal-compact"),
            max_time=1e4, max_segments=10_000, backend="numexpr",
        )[0]
        reference = simulate_batch(
            [instance], get_algorithm("almost-universal-compact"),
            max_time=1e4, max_segments=10_000,
        )[0]
        assert result.met == reference.met
        assert result.meeting_time == reference.meeting_time

    def test_backend_instance_passes_through(self):
        backend = NumpyBackend()
        assert get_backend(backend) is backend

    def test_plugin_backend_registration(self):
        class MirrorBackend(NumpyBackend):
            """A ~5-line plugin: the numpy math under a new registry name."""

            name = "mirror-test"

        register_backend(MirrorBackend)
        try:
            assert "mirror-test" in registered_backends()
            assert get_backend("mirror-test").name == "mirror-test"
            rel_x, rel_y, rvel_x, rvel_y, radius, _, durations = _window_problems(64)
            hit, mins, t_star = fused_window_batch(
                rel_x, rel_y, rvel_x, rvel_y, radius, durations,
                backend="mirror-test",
            )
            ref_hit, ref_mins, ref_t = fused_window_batch(
                rel_x, rel_y, rvel_x, rvel_y, radius, durations
            )
            assert np.array_equal(hit, ref_hit, equal_nan=True)
            assert np.array_equal(mins, ref_mins)
            assert np.array_equal(t_star, ref_t)
        finally:
            backends._REGISTRY.pop("mirror-test", None)
            backends._INSTANCES.pop("mirror-test", None)

    def test_nameless_backend_rejected(self):
        class Nameless(KernelBackend):
            pass

        with pytest.raises(ValueError, match="non-empty name"):
            register_backend(Nameless)


@pytest.mark.parametrize("backend_name", available_backends())
class TestBackendParity:
    """Every backend available here must match the numpy reference.

    Identical verdicts (the NaN/hit pattern) and 1e-9-relative offsets are
    the contract that lets ``REPRO_KERNEL_BACKEND`` change performance but
    never results.
    """

    def test_single_radius_kernel(self, backend_name):
        rel_x, rel_y, rvel_x, rvel_y, radius, _, durations = _window_problems()
        hit, mins, t_star = fused_window_batch(
            rel_x, rel_y, rvel_x, rvel_y, radius, durations, backend=backend_name
        )
        ref_hit, ref_mins, ref_t = fused_window_batch(
            rel_x, rel_y, rvel_x, rvel_y, radius, durations, backend="numpy"
        )
        assert np.array_equal(np.isnan(hit), np.isnan(ref_hit))  # verdicts
        valid = ~np.isnan(ref_hit)
        np.testing.assert_allclose(hit[valid], ref_hit[valid], rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(mins, ref_mins, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(t_star, ref_t, rtol=1e-9, atol=1e-12)

    def test_dual_radius_kernel(self, backend_name):
        rel_x, rel_y, rvel_x, rvel_y, radius, second, durations = _window_problems()
        hit, hit2, mins, t_star = fused_window_batch_dual(
            rel_x, rel_y, rvel_x, rvel_y, radius, second, durations,
            backend=backend_name,
        )
        ref = fused_window_batch_dual(
            rel_x, rel_y, rvel_x, rvel_y, radius, second, durations,
            backend="numpy",
        )
        for value, reference in zip((hit, hit2, mins, t_star), ref):
            assert np.array_equal(np.isnan(value), np.isnan(reference))
            valid = ~np.isnan(reference)
            np.testing.assert_allclose(
                value[valid], reference[valid], rtol=1e-9, atol=1e-12
            )

    def test_verdict_only_mode(self, backend_name):
        rel_x, rel_y, rvel_x, rvel_y, radius, _, durations = _window_problems(128)
        hit, mins, t_star = fused_window_batch(
            rel_x, rel_y, rvel_x, rvel_y, radius, durations,
            track_closest=False, backend=backend_name,
        )
        assert mins is None and t_star is None
        full_hit, _, _ = fused_window_batch(
            rel_x, rel_y, rvel_x, rvel_y, radius, durations, backend=backend_name
        )
        assert np.array_equal(hit, full_hit, equal_nan=True)

    def test_engine_meeting_times_match(self, backend_name):
        """Whole-engine parity: batch verdicts per backend, 1e-9 meeting times."""
        sampler = InstanceSampler(seed=17)
        instances = []
        for cls in (InstanceClass.TYPE_1, InstanceClass.TYPE_3):
            instances.extend(sampler.batch_of_class(cls, 4))
        algorithm = get_algorithm("almost-universal-compact")
        kwargs = dict(max_time=1e5, max_segments=30_000)
        results = simulate_batch(instances, algorithm, backend=backend_name, **kwargs)
        reference = simulate_batch(instances, algorithm, backend="numpy", **kwargs)
        for res, ref in zip(results, reference):
            assert res.met == ref.met
            assert res.termination == ref.termination
            if ref.met:
                assert res.meeting_time == pytest.approx(
                    ref.meeting_time, rel=1e-9, abs=1e-9
                )
            if math.isfinite(ref.min_distance):
                assert res.min_distance == pytest.approx(
                    ref.min_distance, rel=1e-9, abs=1e-9
                )
