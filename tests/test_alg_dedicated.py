"""Tests for the dedicated (per-instance) algorithms — the Theorem 3.1 witnesses."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.base import AgentKnowledge
from repro.algorithms.dedicated import (
    AlignedDelayWalk,
    AsynchronousWaitAndSweep,
    DedicatedRendezvous,
    Lemma39Boundary,
    LinearProbe,
    OppositeChiralityLineSearch,
    StayPut,
    dedicated_witness,
    linear_probe_displacement,
    relative_displacement_map,
)
from repro.analysis.exceptions import make_s1_instance, make_s2_instance
from repro.core.canonical import projection_distance
from repro.core.classification import InstanceClass, classify
from repro.core.feasibility import is_feasible
from repro.core.instance import Instance
from repro.sim.engine import simulate
from repro.util.errors import KnowledgeError


class TestAgentKnowledge:
    def test_knowledge_for_reference_agent(self):
        instance = Instance(r=0.5, x=4.0, y=2.0, phi=0.0, chi=-1, t=1.0)
        knowledge = AgentKnowledge.for_agent(instance, instance.agent_a(), "A")
        assert knowledge.r_local == 0.5
        assert knowledge.canonical_distance_local == pytest.approx(1.0)
        assert knowledge.to_canonical_projection_local == pytest.approx((0.0, 1.0))
        assert knowledge.proj_distance == pytest.approx(4.0)
        assert knowledge.initial_distance == pytest.approx(math.hypot(4.0, 2.0))

    def test_knowledge_scales_with_length_unit(self):
        instance = Instance(r=1.0, x=4.0, y=2.0, tau=2.0, v=1.0)
        knowledge = AgentKnowledge.for_agent(instance, instance.agent_b(), "B")
        assert knowledge.r_local == pytest.approx(0.5)  # r divided by B's unit (2)

    def test_both_agents_equidistant_from_canonical_line(self):
        instance = Instance(r=0.5, x=3.0, y=2.0, phi=1.2, chi=-1)
        ka = AgentKnowledge.for_agent(instance, instance.agent_a(), "A")
        kb = AgentKnowledge.for_agent(instance, instance.agent_b(), "B")
        assert ka.canonical_distance_local == pytest.approx(kb.canonical_distance_local)


class TestStayPut:
    def test_meets_trivial(self, trivial_instance):
        assert simulate(trivial_instance, StayPut()).met

    def test_program_is_empty(self):
        assert list(StayPut().program()) == []


class TestLinearProbe:
    def test_supports_matches_map_singularity(self):
        probe = LinearProbe()
        assert probe.supports(Instance(r=0.5, x=1.0, y=1.0, phi=1.0, chi=1))
        assert probe.supports(Instance(r=0.5, x=1.0, y=1.0, v=2.0))
        assert not probe.supports(Instance(r=0.5, x=1.0, y=1.0, phi=0.0, chi=1))
        assert not probe.supports(Instance(r=0.5, x=1.0, y=1.0, chi=-1))  # reflection, v=1
        # tau * v = 1 keeps the length unit 1: singular again for aligned frames.
        assert not probe.supports(Instance(r=0.5, x=1.0, y=1.0, tau=2.0, v=0.5))

    def test_unsupported_instance_raises(self):
        with pytest.raises(KnowledgeError):
            simulate(Instance(r=0.5, x=2.0, y=0.0), LinearProbe())

    def test_displacement_solves_relative_equation(self):
        instance = Instance(r=0.5, x=1.0, y=-2.0, phi=2.5, chi=-1, tau=1.0, v=1.5, t=0.7)
        u = linear_probe_displacement(instance)
        image = relative_displacement_map(instance)(u)
        assert image == pytest.approx((-instance.x, -instance.y), abs=1e-9)

    @pytest.mark.parametrize(
        "instance",
        [
            Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1),          # clause 2a
            Instance(r=0.5, x=2.0, y=-1.0, phi=1.0, chi=1, t=3.0),            # clause 2a, delayed
            Instance(r=0.5, x=1.0, y=0.0, v=2.0, t=1.0),                      # different speed
            Instance(r=0.3, x=-1.0, y=2.0, phi=2.0, chi=-1, v=0.5, t=2.0),    # mirrored, slow
            Instance(r=0.3, x=1.0, y=2.0, tau=0.5, v=1.0, t=0.5),             # different clock
        ],
    )
    def test_rendezvous(self, instance):
        result = simulate(instance, LinearProbe(), max_time=1e5)
        assert result.met
        assert result.segments_total <= 4


class TestAsynchronousWaitAndSweep:
    def test_supports_only_different_clocks(self):
        sweep = AsynchronousWaitAndSweep()
        assert sweep.supports(Instance(r=0.5, x=1.0, y=0.0, tau=2.0))
        assert not sweep.supports(Instance(r=0.5, x=1.0, y=0.0, v=2.0))

    def test_parameters_cover_distance(self):
        instance = Instance(r=0.5, x=3.0, y=0.0, tau=2.0)
        resolution, delta = AsynchronousWaitAndSweep.parameters(instance)
        fast_unit = 1.0  # A has the faster clock here
        assert 2.0**resolution * fast_unit >= instance.initial_distance
        assert delta > 0.0

    @pytest.mark.parametrize(
        "instance",
        [
            Instance(r=0.5, x=2.0, y=0.0, tau=2.0, v=1.0, t=1.0),
            Instance(r=0.5, x=1.0, y=1.0, tau=0.5, v=1.0, t=0.0),
            Instance(r=0.4, x=-2.0, y=1.0, tau=3.0, v=0.5, t=2.0, chi=-1, phi=1.0),
            Instance(r=0.5, x=1.0, y=-1.0, tau=0.25, v=2.0, t=0.5, phi=3.0),
        ],
    )
    def test_rendezvous(self, instance):
        result = simulate(instance, AsynchronousWaitAndSweep(), max_time=1e9)
        assert result.met


class TestAlignedDelayWalk:
    def test_supports(self):
        walk = AlignedDelayWalk()
        assert walk.supports(Instance(r=0.5, x=3.0, y=0.0, t=4.0))
        assert walk.supports(make_s1_instance(3.0, 4.0, 1.0))
        assert not walk.supports(Instance(r=0.5, x=3.0, y=0.0, t=1.0))
        assert not walk.supports(Instance(r=0.5, x=3.0, y=0.0, t=4.0, phi=1.0))

    def test_rendezvous_interior(self, type2_instance):
        result = simulate(type2_instance, AlignedDelayWalk())
        assert result.met

    def test_rendezvous_large_delay_catches_resting_agent(self):
        # t > dist + r: the later agent walks through the earlier agent's rest point.
        instance = Instance(r=0.5, x=2.0, y=0.0, t=10.0)
        result = simulate(instance, AlignedDelayWalk())
        assert result.met

    def test_boundary_meets_at_exactly_r(self, s1_instance):
        result = simulate(s1_instance, AlignedDelayWalk())
        assert result.met
        assert result.meeting_distance == pytest.approx(s1_instance.r, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.3, 1.0), st.floats(-3.0, 3.0), st.floats(-3.0, 3.0), st.floats(0.0, 3.0))
    def test_rendezvous_random(self, r, x, y, slack):
        distance = math.hypot(x, y)
        if distance <= r + 0.05:
            return
        instance = Instance(r=r, x=x, y=y, t=distance - r + slack)
        assert simulate(instance, AlignedDelayWalk(), radius_slack=1e-9).met


class TestOppositeChiralityLineSearch:
    def test_supports(self):
        search = OppositeChiralityLineSearch()
        assert search.supports(Instance(r=0.5, x=2.0, y=1.0, chi=-1, t=2.0))
        assert search.supports(make_s2_instance(2.0, 1.0, 0.0, 0.5))
        assert not search.supports(Instance(r=0.5, x=2.0, y=1.0, chi=1, t=2.0))
        assert not search.supports(Instance(r=0.5, x=4.0, y=1.0, chi=-1, t=0.5))

    def test_rendezvous_interior(self, type1_instance):
        assert simulate(type1_instance, OppositeChiralityLineSearch(), max_time=1e6).met

    def test_rendezvous_rotated_mirrored(self):
        instance = Instance(r=0.5, x=2.0, y=1.0, phi=math.pi / 2.0, chi=-1, t=3.0)
        assert simulate(instance, OppositeChiralityLineSearch(), max_time=1e6).met

    def test_boundary_instance(self, s2_instance):
        result = simulate(s2_instance, OppositeChiralityLineSearch(), max_time=1e6, radius_slack=1e-9)
        assert result.met

    def test_zero_projection_distance(self):
        # Agents symmetric about the canonical line: the projections coincide,
        # every delay is feasible.
        instance = Instance(r=0.5, x=0.0, y=3.0, phi=0.0, chi=-1, t=0.5)
        assert projection_distance(instance) == pytest.approx(0.0)
        assert simulate(instance, OppositeChiralityLineSearch(), max_time=1e6).met

    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(0.3, 1.0),
        st.floats(-3.0, 3.0),
        st.floats(-3.0, 3.0),
        st.floats(0.0, 2.0 * math.pi - 1e-6),
        st.floats(0.05, 3.0),
    )
    def test_rendezvous_random(self, r, x, y, phi, slack):
        if math.hypot(x, y) <= r + 0.05:
            return
        base = Instance(r=r, x=x, y=y, phi=phi, chi=-1, t=0.0)
        t = max(projection_distance(base) - r, 0.0) + slack
        instance = base.with_delay(t)
        assert simulate(instance, OppositeChiralityLineSearch(), max_time=1e7,
                        max_segments=300_000, radius_slack=1e-9).met


class TestLemma39Boundary:
    def test_supports_only_boundary(self, s2_instance, type1_instance):
        boundary = Lemma39Boundary()
        assert boundary.supports(s2_instance)
        assert not boundary.supports(type1_instance)
        assert not boundary.supports(Instance(r=0.5, x=2.0, y=1.0, chi=1, t=1.5))

    def test_meets_at_exactly_r(self, s2_instance):
        result = simulate(s2_instance, Lemma39Boundary(), radius_slack=1e-12)
        assert result.met
        assert result.meeting_distance == pytest.approx(s2_instance.r, abs=1e-9)

    def test_projB_south_case(self):
        instance = make_s2_instance(-2.0, -1.0, 0.0, 0.5)
        assert simulate(instance, Lemma39Boundary(), radius_slack=1e-12).met

    def test_rotated_boundary_case(self):
        instance = make_s2_instance(2.0, 1.0, math.pi / 2.0, 0.5)
        assert simulate(instance, Lemma39Boundary(), radius_slack=1e-9).met

    def test_agents_stop_after_meeting(self, s2_instance):
        # The program is finite: after going North t and South t the agent stops.
        program = list(
            Lemma39Boundary().program_for(s2_instance, s2_instance.agent_a(), "A")
        )
        assert len(program) <= 3


class TestDedicatedDispatcher:
    def test_witness_selection(self, trivial_instance, type1_instance, type2_instance,
                               type3_instance, type4_instance, s1_instance, s2_instance):
        assert isinstance(dedicated_witness(trivial_instance), StayPut)
        assert isinstance(dedicated_witness(type1_instance), OppositeChiralityLineSearch)
        assert isinstance(dedicated_witness(type2_instance), AlignedDelayWalk)
        assert isinstance(dedicated_witness(type3_instance), LinearProbe) or isinstance(
            dedicated_witness(type3_instance), AsynchronousWaitAndSweep
        )
        assert isinstance(dedicated_witness(type4_instance), LinearProbe)
        assert isinstance(dedicated_witness(s1_instance), AlignedDelayWalk)
        assert isinstance(dedicated_witness(s2_instance), OppositeChiralityLineSearch)

    def test_witness_none_for_infeasible(self, infeasible_instance):
        assert dedicated_witness(infeasible_instance) is None

    def test_dispatcher_algorithm_rejects_infeasible(self, infeasible_instance):
        with pytest.raises(KnowledgeError):
            simulate(infeasible_instance, DedicatedRendezvous())

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(0.3, 1.0),
        st.floats(-3.0, 3.0),
        st.floats(-3.0, 3.0),
        st.floats(0.0, 2.0 * math.pi - 1e-9),
        st.floats(0.25, 3.0),
        st.floats(0.25, 3.0),
        st.floats(0.0, 4.0),
        st.sampled_from([1, -1]),
    )
    def test_every_feasible_instance_has_a_working_witness(
        self, r, x, y, phi, tau, v, t, chi
    ):
        """Executable 'if' direction of Theorem 3.1 on random feasible instances."""
        if math.hypot(x, y) < 0.2:
            return
        instance = Instance(r=r, x=x, y=y, phi=phi, tau=tau, v=v, t=t, chi=chi)
        if not is_feasible(instance):
            return
        witness = dedicated_witness(instance)
        result = simulate(
            instance, witness, max_time=1e15, max_segments=400_000, radius_slack=1e-9
        )
        assert result.met, f"witness {witness} failed on {instance.describe()}"
