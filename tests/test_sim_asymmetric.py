"""Tests for the Section 5 extension: different visibility radii."""

import math

import pytest

from repro.algorithms.almost_universal import AlmostUniversalRV
from repro.algorithms.base import UniversalAlgorithm
from repro.algorithms.dedicated import LinearProbe
from repro.core.instance import Instance
from repro.motion.instructions import Move
from repro.sim.asymmetric import AsymmetricOutcome, simulate_asymmetric
from repro.sim.batch import simulate_batch
from repro.sim.batch_asymmetric import simulate_batch_asymmetric
from repro.sim.engine import simulate
from repro.sim.results import TerminationReason


class WalkEast(UniversalAlgorithm):
    name = "walk-east"

    def __init__(self, distance=20.0):
        self.distance = distance

    def program(self):
        yield Move(self.distance, 0.0)


class TestBasicSemantics:
    def test_equal_radii_match_symmetric_engine(self):
        instance = Instance(r=0.5, x=3.0, y=0.0, t=2.75)
        symmetric = simulate(instance, WalkEast())
        outcome = simulate_asymmetric(instance, WalkEast())
        assert outcome.met == symmetric.met
        assert outcome.meeting_time == pytest.approx(symmetric.meeting_time)
        assert outcome.frozen_agent is None  # meeting happens at the shared radius

    def test_invalid_radii(self):
        instance = Instance(r=0.5, x=3.0, y=0.0)
        with pytest.raises(ValueError):
            simulate_asymmetric(instance, WalkEast(), radius_a=0.0)
        with pytest.raises(ValueError):
            simulate_asymmetric(instance, WalkEast(), max_time=math.inf)

    def test_larger_radius_agent_freezes_first(self):
        # B sleeps 10 time units; A walks east towards B.  A (radius 2) sees B
        # at distance 2 and freezes; it never gets within B's radius 0.5, and
        # the walk-east program gives B no chance to close the gap afterwards.
        instance = Instance(r=0.5, x=5.0, y=0.0, t=10.0)
        outcome = simulate_asymmetric(
            instance, WalkEast(4.0), radius_a=2.0, radius_b=0.5, max_time=100.0
        )
        assert outcome.frozen_agent == "A"
        assert outcome.freeze_time == pytest.approx(3.0)
        assert outcome.freeze_distance == pytest.approx(2.0)
        assert not outcome.met
        assert outcome.result.termination is TerminationReason.PROGRAMS_FINISHED

    def test_rendezvous_at_smaller_radius(self):
        # Same setup but B's later walk passes through A's frozen position.
        instance = Instance(r=0.5, x=5.0, y=0.0, t=10.0, phi=math.pi)
        outcome = simulate_asymmetric(
            instance, WalkEast(6.0), radius_a=2.0, radius_b=0.5, max_time=100.0
        )
        # A freezes at distance 2 (time 3); B wakes at 10 and walks (its east is
        # absolute west) towards A's frozen position at x=3.
        assert outcome.frozen_agent == "A"
        assert outcome.met
        assert outcome.result.meeting_distance == pytest.approx(0.5)
        assert outcome.meeting_time == pytest.approx(10.0 + (5.0 - 3.0) - 0.5)

    def test_reports_radii_in_algorithm_name(self):
        instance = Instance(r=0.5, x=2.0, y=0.0, t=3.0)
        outcome = simulate_asymmetric(instance, WalkEast(), radius_a=0.5, radius_b=0.25)
        assert "r_a=0.5" in outcome.result.algorithm_name


class TestFreezeCounterfactualFixes:
    """PR 4 bugfixes: the freeze event retroactively cancels motion.

    The closest-approach tracker used to scan each window in full *before*
    the freeze was detected, recording minima achieved by the larger-radius
    agent's counterfactual motion past its freeze time; the freeze resume
    path also skipped the segment-budget check, and ``max_segments`` was
    never validated.  All three are fixed in both engines.
    """

    def _drive_by(self):
        # A (radius 5) walks east straight through B's position; B sleeps
        # until t=30 and then walks *away*.  A freezes at distance 5 (t=5)
        # and never moves again, so the true closest approach is exactly the
        # freeze distance — but A's counterfactual continuation would have
        # passed through B (distance 0 at t=10), which is what the old
        # tracker recorded.
        return Instance(r=0.5, x=10.0, y=0.0, t=30.0), WalkEast(20.0)

    def test_event_engine_min_distance_stops_at_freeze(self):
        instance, algorithm = self._drive_by()
        outcome = simulate_asymmetric(
            instance, algorithm, radius_a=5.0, radius_b=0.5, max_time=100.0
        )
        assert outcome.frozen_agent == "A"
        assert outcome.freeze_time == pytest.approx(5.0)
        assert not outcome.met
        assert outcome.result.min_distance == pytest.approx(5.0)
        assert outcome.result.min_distance_time == pytest.approx(5.0)

    def test_batch_engine_parity_including_horizon_cut_freeze_window(self):
        instance, algorithm = self._drive_by()
        event = simulate_asymmetric(
            instance, algorithm, radius_a=5.0, radius_b=0.5, max_time=100.0
        )
        # initial_horizon=9.0 cuts the freeze window at the adaptive horizon:
        # the old engine re-scanned it to its true boundary (t=20) and
        # recorded the counterfactual pass-through.
        for initial_horizon in (None, 9.0):
            batch = simulate_batch_asymmetric(
                [instance], algorithm, radius_a=5.0, radius_b=0.5,
                max_time=100.0, initial_horizon=initial_horizon,
            )[0]
            assert batch.frozen_agent == "A"
            assert batch.result.min_distance == pytest.approx(
                event.result.min_distance, rel=1e-9
            )
            assert batch.result.min_distance_time == pytest.approx(5.0, rel=1e-9)

    def test_freeze_resume_enforces_segment_budget(self):
        def algorithm(instance, spec, role):
            if role == "A":
                return []  # A never moves; B walks west in unit steps
            return [Move(1.0, 0.0) for _ in range(10)]

        instance = Instance(r=0.5, x=10.0, y=0.0, phi=math.pi)
        # The freeze at t=3 lands exactly on a segment boundary of the moving
        # agent, so resuming pulls its 4th segment — over the budget of 3.
        # The old code skipped the budget check on the freeze path and went
        # on to meet at t=3.5 despite the exhausted budget.
        event = simulate_asymmetric(
            instance, algorithm, radius_a=7.0, radius_b=6.5,
            max_time=100.0, max_segments=3,
        )
        assert event.frozen_agent == "A"
        assert event.freeze_time == pytest.approx(3.0)
        assert not event.met
        assert event.result.termination is TerminationReason.MAX_SEGMENTS
        batch = simulate_batch_asymmetric(
            [instance], algorithm, radius_a=7.0, radius_b=6.5,
            max_time=100.0, max_segments=3,
        )[0]
        assert batch.frozen_agent == "A" and not batch.met
        assert batch.result.termination is TerminationReason.MAX_SEGMENTS
        assert batch.result.simulated_time == pytest.approx(
            event.result.simulated_time, rel=1e-9
        )

    def test_non_positive_max_segments_rejected_everywhere(self):
        instance = Instance(r=0.5, x=3.0, y=0.0)
        for bad in (0, -5):
            with pytest.raises(ValueError):
                simulate_asymmetric(instance, WalkEast(), max_segments=bad)
            with pytest.raises(ValueError):
                simulate_batch_asymmetric([instance], WalkEast(), max_segments=bad)
            with pytest.raises(ValueError):
                simulate_batch([instance], WalkEast(), max_segments=bad)


class TestSection5Claims:
    def test_universal_algorithm_survives_asymmetric_radii(self):
        """Section 5: AlmostUniversalRV keeps working because every phase
        contains a planar search that the still-moving agent eventually runs."""
        instance = Instance(r=0.6, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.5)
        outcome = simulate_asymmetric(
            instance,
            AlmostUniversalRV(),
            radius_a=0.6,
            radius_b=0.2,
            max_time=1e12,
            max_segments=600_000,
        )
        assert outcome.met
        assert outcome.result.meeting_distance <= 0.2 + 1e-9
        # The meeting at the smaller radius can only happen later than (or at)
        # the symmetric meeting at the larger radius.
        symmetric = simulate(instance, AlmostUniversalRV(), max_time=1e12, max_segments=600_000)
        assert outcome.meeting_time >= symmetric.meeting_time - 1e-9

    def test_dedicated_probe_without_search_step_can_fail(self):
        """The paper's caveat: algorithms without a trailing search procedure
        are *not* automatically correct under asymmetric radii — the frozen
        agent may stop before the mover gets within the smaller radius."""
        instance = Instance(r=1.0, x=2.0, y=2.0, phi=math.pi / 2.0, chi=1, t=0.0)
        symmetric = simulate(instance, LinearProbe())
        assert symmetric.met
        outcome = simulate_asymmetric(
            instance, LinearProbe(), radius_a=1.0, radius_b=0.05, max_time=1e6
        )
        # The larger-radius agent freezes mid-probe; the other finishes its own
        # probe but no longer ends at the same point, so with a tiny radius the
        # meeting is not guaranteed (and indeed does not happen here).
        assert outcome.frozen_agent is not None
        assert not outcome.met
