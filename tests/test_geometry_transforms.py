"""Tests for rotations, reflections, frames matrices and isometries."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.transforms import (
    Isometry,
    LinearMap2,
    Reflection,
    Rotation,
    apply_matrix,
    frame_matrix,
    invert_2x2,
    matrix_multiply,
    reflection_matrix,
    rotation_matrix,
    solve_2x2,
)
from repro.geometry.vec import dist, norm, sub

angles = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)
coords = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)


class TestMatrices:
    def test_rotation_quarter_turn(self):
        m = rotation_matrix(math.pi / 2)
        x, y = apply_matrix(m, (1.0, 0.0))
        assert x == pytest.approx(0.0, abs=1e-12)
        assert y == pytest.approx(1.0)

    def test_reflection_across_x_axis(self):
        m = reflection_matrix(0.0)
        assert apply_matrix(m, (2.0, 3.0)) == pytest.approx((2.0, -3.0))

    def test_frame_matrix_identity(self):
        assert frame_matrix(0.0, 1) == pytest.approx((1.0, 0.0, 0.0, 1.0))

    def test_frame_matrix_mirror(self):
        m = frame_matrix(0.0, -1)
        assert apply_matrix(m, (0.0, 1.0)) == pytest.approx((0.0, -1.0))

    def test_frame_matrix_invalid_chirality(self):
        with pytest.raises(ValueError):
            frame_matrix(0.0, 0)

    def test_invert_singular_raises(self):
        with pytest.raises(ZeroDivisionError):
            invert_2x2((1.0, 2.0, 2.0, 4.0))

    @given(angles, points)
    def test_rotation_preserves_norm(self, angle, point):
        assert norm(apply_matrix(rotation_matrix(angle), point)) == pytest.approx(
            norm(point), rel=1e-9, abs=1e-9
        )

    @given(angles, points)
    def test_reflection_is_involution(self, axis, point):
        m = reflection_matrix(axis)
        twice = apply_matrix(m, apply_matrix(m, point))
        assert twice == pytest.approx(point, abs=1e-7)

    @given(angles, angles, points)
    def test_matrix_multiply_composes(self, a, b, point):
        composed = matrix_multiply(rotation_matrix(a), rotation_matrix(b))
        direct = rotation_matrix(a + b)
        assert apply_matrix(composed, point) == pytest.approx(
            apply_matrix(direct, point), abs=1e-6
        )

    @given(points)
    def test_solve_2x2(self, rhs):
        m = (2.0, 1.0, 1.0, 3.0)
        x = solve_2x2(m, rhs)
        assert apply_matrix(m, x) == pytest.approx(rhs, abs=1e-9)


class TestLinearMap2:
    def test_determinant_and_singularity(self):
        assert LinearMap2((2.0, 0.0, 0.0, 3.0)).determinant() == 6.0
        assert LinearMap2((1.0, 1.0, 1.0, 1.0)).is_singular()

    def test_inverse_roundtrip(self):
        m = LinearMap2((1.0, 2.0, 3.0, 5.0))
        v = (0.7, -1.3)
        assert m.inverse()(m(v)) == pytest.approx(v)

    def test_compose_order(self):
        rotate = LinearMap2(rotation_matrix(math.pi / 2))
        stretch = LinearMap2((2.0, 0.0, 0.0, 1.0))
        # compose applies the *other* map first.
        composed = stretch.compose(rotate)
        assert composed((1.0, 0.0)) == pytest.approx((0.0, 1.0), abs=1e-12)

    def test_operator_norm_rotation_is_one(self):
        assert LinearMap2(rotation_matrix(1.0)).operator_norm() == pytest.approx(1.0)

    def test_operator_norm_diagonal(self):
        assert LinearMap2((3.0, 0.0, 0.0, 2.0)).operator_norm() == pytest.approx(3.0)

    @given(points)
    def test_operator_norm_bounds_image(self, v):
        m = LinearMap2((1.0, 2.0, -0.5, 0.75))
        assert norm(m(v)) <= m.operator_norm() * norm(v) + 1e-6


class TestRotationReflectionObjects:
    def test_rotation_inverse(self):
        r = Rotation(0.7)
        v = (1.0, 2.0)
        assert r.inverse()(r(v)) == pytest.approx(v)

    def test_reflection_inverse_is_itself(self):
        refl = Reflection(0.3)
        assert refl.inverse().axis_angle == refl.axis_angle


class TestIsometry:
    def test_identity(self):
        assert Isometry.identity()((3.0, -2.0)) == (3.0, -2.0)

    def test_translation(self):
        assert Isometry.translation_by((1.0, 2.0))((3.0, 4.0)) == (4.0, 6.0)

    def test_rotation_about_center_fixes_center(self):
        iso = Isometry.rotation_about((2.0, 1.0), 1.234)
        assert iso((2.0, 1.0)) == pytest.approx((2.0, 1.0))

    def test_reflection_across_line_fixes_points_on_line(self):
        iso = Isometry.reflection_across_line((1.0, 1.0), math.pi / 4)
        assert iso((2.0, 2.0)) == pytest.approx((2.0, 2.0))
        # A point off the line maps to its mirror image.
        assert iso((2.0, 0.0)) == pytest.approx((0.0, 2.0), abs=1e-12)

    @given(points, points, angles)
    def test_isometries_preserve_distances(self, a, b, angle):
        iso = Isometry.rotation_about((0.5, -0.5), angle).compose(
            Isometry.translation_by((1.0, 2.0))
        )
        assert dist(iso(a), iso(b)) == pytest.approx(dist(a, b), rel=1e-9, abs=1e-6)
