"""Tests for the analytical phase bounds (Lemmas 3.2-3.5) and cost estimates."""

import math

import pytest

from repro.algorithms.bounds import (
    PhaseCost,
    cgkk_completion_bound,
    estimate_simulation_cost,
    latecomers_completion_bound,
    phase_cost,
    type1_phase_bound,
    type2_phase_bound,
    type3_phase_bound,
    type4_phase_bound,
    universal_phase_bound,
)
from repro.algorithms.cow_walk import planar_cow_walk_segment_count
from repro.algorithms.schedules import CompactSchedule, PaperSchedule
from repro.core.instance import Instance


class TestCompletionBounds:
    def test_latecomers_completion_positive_and_exceeds_delay_phase(self, type2_instance):
        delta = latecomers_completion_bound(type2_instance)
        assert delta > 0.0
        # The bound must at least include one full probe of the phase where
        # the delay fits (wait 2**k >= t).
        assert delta >= type2_instance.t

    def test_latecomers_completion_requires_contract(self, infeasible_instance):
        with pytest.raises(ValueError):
            latecomers_completion_bound(infeasible_instance)

    def test_cgkk_completion_positive(self, type4_instance):
        assert cgkk_completion_bound(type4_instance.halved_radius_no_delay()) > 0.0

    def test_cgkk_completion_requires_contract(self):
        with pytest.raises(ValueError):
            cgkk_completion_bound(Instance(r=0.5, x=3.0, y=0.0))


class TestPhaseBounds:
    def test_type1(self, type1_instance):
        bound = type1_phase_bound(type1_instance)
        assert bound >= 1
        # More slack (larger e) can only help: the bound must not grow when
        # the delay increases by a little.
        looser = type1_instance.with_delay(type1_instance.t + 0.5)
        assert type1_phase_bound(looser) <= bound + 1

    def test_type1_requires_positive_slack(self, infeasible_instance):
        with pytest.raises(ValueError):
            type1_phase_bound(Instance(r=0.5, x=4.0, y=0.0, chi=-1, t=1.0))

    def test_type2(self, type2_instance):
        assert type2_phase_bound(type2_instance) >= 1

    def test_type3(self, type3_instance):
        bound = type3_phase_bound(type3_instance)
        assert bound >= 1
        # Smaller radius -> finer sweeps -> larger (or equal) phase bound.
        finer = type3_instance.with_visibility_radius(type3_instance.r / 8.0)
        assert type3_phase_bound(finer) >= bound

    def test_type3_requires_different_clocks(self, type4_instance):
        with pytest.raises(ValueError):
            type3_phase_bound(type4_instance)

    def test_type4(self, type4_instance):
        assert type4_phase_bound(type4_instance) >= 1

    def test_universal_dispatch(self, trivial_instance, type1_instance, type2_instance,
                                type3_instance, type4_instance, s1_instance,
                                infeasible_instance):
        assert universal_phase_bound(trivial_instance) == 0
        assert universal_phase_bound(type1_instance) == type1_phase_bound(type1_instance)
        assert universal_phase_bound(type2_instance) == type2_phase_bound(type2_instance)
        assert universal_phase_bound(type3_instance) == type3_phase_bound(type3_instance)
        assert universal_phase_bound(type4_instance) == type4_phase_bound(type4_instance)
        assert universal_phase_bound(s1_instance) is None
        assert universal_phase_bound(infeasible_instance) is None


class TestPhaseCost:
    def test_block1_dominates_and_counts_planar_walks(self):
        cost = phase_cost(2)
        assert isinstance(cost, PhaseCost)
        assert cost.segments >= 8 * planar_cow_walk_segment_count(2)
        assert cost.local_duration > 2.0**60  # the block-3 wait of phase 2

    def test_compact_schedule_has_smaller_duration(self):
        paper = phase_cost(3, PaperSchedule())
        compact = phase_cost(3, CompactSchedule())
        assert compact.local_duration < paper.local_duration
        assert compact.segments == paper.segments

    def test_cost_grows_with_phase(self):
        costs = [phase_cost(i).segments for i in range(1, 5)]
        assert costs == sorted(costs)
        assert costs[-1] > 10 * costs[0]

    def test_estimate_simulation_cost(self, type4_instance, s2_instance):
        estimate = estimate_simulation_cost(type4_instance)
        assert estimate is not None
        assert estimate.phase == universal_phase_bound(type4_instance)
        assert estimate.segments > 0
        assert estimate_simulation_cost(s2_instance) is None

    def test_estimate_is_cumulative(self, type4_instance):
        estimate = estimate_simulation_cost(type4_instance)
        total = sum(phase_cost(i).segments for i in range(1, estimate.phase + 1))
        assert estimate.segments == total
