"""Tests for the type classification and the Theorem 3.1 feasibility predicate."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.canonical import projection_distance
from repro.core.classification import InstanceClass, classify, instance_type
from repro.core.feasibility import (
    FeasibilityClause,
    exception_set,
    feasibility_clause,
    feasibility_margin,
    is_covered_by_universal,
    is_exception,
    is_feasible,
)
from repro.core.instance import Instance


class TestClassify:
    def test_trivial(self, trivial_instance):
        assert classify(trivial_instance) is InstanceClass.TRIVIAL

    def test_type1(self, type1_instance):
        assert classify(type1_instance) is InstanceClass.TYPE_1
        assert instance_type(type1_instance) == 1

    def test_type2(self, type2_instance):
        assert classify(type2_instance) is InstanceClass.TYPE_2
        assert instance_type(type2_instance) == 2

    def test_type3(self, type3_instance):
        assert classify(type3_instance) is InstanceClass.TYPE_3
        assert instance_type(type3_instance) == 3

    def test_type4_rotated(self, type4_instance):
        assert classify(type4_instance) is InstanceClass.TYPE_4
        assert instance_type(type4_instance) == 4

    def test_type4_different_speed(self):
        inst = Instance(r=0.5, x=2.0, y=0.0, tau=1.0, v=2.0, t=1.0)
        assert classify(inst) is InstanceClass.TYPE_4

    def test_s1_boundary(self, s1_instance):
        assert classify(s1_instance) is InstanceClass.S1_BOUNDARY
        assert instance_type(s1_instance) is None

    def test_s2_boundary(self, s2_instance):
        assert classify(s2_instance) is InstanceClass.S2_BOUNDARY

    def test_infeasible(self, infeasible_instance):
        assert classify(infeasible_instance) is InstanceClass.INFEASIBLE

    def test_infeasible_opposite_chirality(self):
        inst = Instance(r=0.5, x=4.0, y=0.0, phi=0.0, chi=-1, t=1.0)
        assert projection_distance(inst) == pytest.approx(4.0)
        assert classify(inst) is InstanceClass.INFEASIBLE

    def test_boundary_tolerance_parameter(self, s1_instance):
        # With a huge tolerance nearby type-2 instances collapse onto the boundary...
        near = s1_instance.with_delay(s1_instance.t + 0.5)
        assert classify(near) is InstanceClass.TYPE_2
        assert classify(near, boundary_tol=1.0) is InstanceClass.S1_BOUNDARY
        # ...and with zero tolerance the exact boundary is still recognized.
        assert classify(s1_instance, boundary_tol=0.0) is InstanceClass.S1_BOUNDARY

    def test_tau_and_speed_cancel_is_type4_not_type3(self):
        # tau != 1 so it is non-synchronous and classified by clock rate first.
        inst = Instance(r=0.5, x=2.0, y=0.0, tau=2.0, v=0.5)
        assert classify(inst) is InstanceClass.TYPE_3


class TestClassPredicates:
    def test_feasible_flags(self):
        assert InstanceClass.TYPE_1.is_feasible
        assert InstanceClass.S1_BOUNDARY.is_feasible
        assert not InstanceClass.INFEASIBLE.is_feasible

    def test_covered_flags(self):
        assert InstanceClass.TYPE_3.is_covered_by_universal
        assert InstanceClass.TRIVIAL.is_covered_by_universal
        assert not InstanceClass.S1_BOUNDARY.is_covered_by_universal
        assert not InstanceClass.INFEASIBLE.is_covered_by_universal

    def test_exception_flags(self):
        assert InstanceClass.S2_BOUNDARY.is_exception
        assert not InstanceClass.TYPE_1.is_exception


class TestFeasibility:
    def test_clauses(self, type1_instance, type2_instance, type3_instance, type4_instance):
        assert feasibility_clause(type3_instance) is FeasibilityClause.NON_SYNCHRONOUS
        assert feasibility_clause(type4_instance) is FeasibilityClause.SAME_CHIRALITY_ROTATED
        assert (
            feasibility_clause(type2_instance) is FeasibilityClause.SAME_CHIRALITY_ALIGNED_DELAY
        )
        assert feasibility_clause(type1_instance) is FeasibilityClause.OPPOSITE_CHIRALITY_DELAY

    def test_infeasible_clause(self, infeasible_instance):
        assert feasibility_clause(infeasible_instance) is FeasibilityClause.INFEASIBLE
        assert not is_feasible(infeasible_instance)

    def test_boundaries_are_feasible_but_not_covered(self, s1_instance, s2_instance):
        for inst in (s1_instance, s2_instance):
            assert is_feasible(inst)
            assert not is_covered_by_universal(inst)
            assert is_exception(inst)

    def test_exception_set_names(self, s1_instance, s2_instance, type1_instance):
        assert exception_set(s1_instance) == "S1"
        assert exception_set(s2_instance) == "S2"
        assert exception_set(type1_instance) is None

    def test_margin_values(self, s1_instance, type2_instance, type4_instance):
        assert feasibility_margin(s1_instance) == pytest.approx(0.0, abs=1e-12)
        assert feasibility_margin(type2_instance) > 0.0
        assert feasibility_margin(type4_instance) == math.inf

    def test_margin_infeasible_is_negative(self, infeasible_instance):
        assert feasibility_margin(infeasible_instance) < 0.0

    @given(
        st.floats(0.2, 1.0),
        st.floats(-5.0, 5.0),
        st.floats(-5.0, 5.0),
        st.floats(0.0, 2.0 * math.pi - 1e-9),
        st.floats(0.25, 4.0),
        st.floats(0.25, 4.0),
        st.floats(0.0, 5.0),
        st.sampled_from([1, -1]),
    )
    def test_classification_consistent_with_theorem(self, r, x, y, phi, tau, v, t, chi):
        """The classify() partition must agree with the Theorem 3.1 predicate."""
        if math.hypot(x, y) <= r:
            return
        inst = Instance(r=r, x=x, y=y, phi=phi, tau=tau, v=v, t=t, chi=chi)
        cls = classify(inst)
        assert cls.is_feasible == is_feasible(inst)
        if cls.is_covered_by_universal:
            assert is_feasible(inst)
        # Theorem 3.2 coverage = Theorem 3.1 feasibility minus the boundaries.
        assert is_covered_by_universal(inst) == (is_feasible(inst) and not is_exception(inst))

    @given(
        st.floats(0.2, 1.0),
        st.floats(-5.0, 5.0),
        st.floats(-5.0, 5.0),
        st.floats(0.0, 2.0 * math.pi - 1e-9),
        st.sampled_from([1, -1]),
    )
    def test_synchronous_delay_monotonicity(self, r, x, y, phi, chi):
        """Feasibility of synchronous instances is monotone in the delay."""
        if math.hypot(x, y) <= r:
            return
        base = Instance(r=r, x=x, y=y, phi=phi, chi=chi, t=0.0)
        threshold = (
            projection_distance(base) if chi == -1 else base.initial_distance
        ) - r
        if threshold <= 0.0:
            assert is_feasible(base)
            return
        below = base.with_delay(threshold * 0.5)
        above = base.with_delay(threshold + 0.5)
        if chi == 1 and phi != 0.0:
            assert is_feasible(below) and is_feasible(above)
        else:
            assert not is_feasible(below)
            assert is_feasible(above)
