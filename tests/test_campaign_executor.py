"""Fault-tolerant execution: worker pools, injected faults, quarantine, signals.

The acceptance contract of the robustness work, pinned end to end: whatever
goes wrong mid-campaign — a worker SIGKILLed, a shard hung past its timeout,
a poison shard exhausting its attempts, an operator's Ctrl-C, two runner
processes racing over one store — the surviving store is always valid, resume
recomputes zero finished shards, and the final exported columns are
byte-identical to a sequential uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CampaignArm,
    CampaignError,
    CampaignSpec,
    CampaignStore,
    FaultInjection,
    plan_shards,
    run_campaign,
)
from repro.campaign.executor import retry_delay

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def make_spec(**overrides):
    base = dict(
        name="executor-unit",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1", "type-2"),
        instances_per_cell=6,
        seed=13,
        simulator={"max_time": 1e6, "max_segments": 50_000},
        shard_size=3,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def identical_stores(dir_a, dir_b):
    a = CampaignStore(str(dir_a)).export_columns()
    b = CampaignStore(str(dir_b)).export_columns()
    assert set(a) == set(b)
    for name in a:
        assert a[name].tobytes() == b[name].tobytes(), f"column {name} differs"


@pytest.fixture(scope="module")
def sequential_reference(tmp_path_factory):
    """One uninterrupted ``workers=1`` run: the byte-identity baseline."""
    directory = tmp_path_factory.mktemp("reference") / "camp"
    stats = run_campaign(str(directory), make_spec())
    assert stats.complete
    return directory


class TestRetryDelay:
    def test_grows_exponentially_with_jitter_bounds(self):
        for attempt in (1, 2, 3, 4):
            base = 0.25 * 2.0 ** (attempt - 1)
            for _ in range(20):
                delay = retry_delay(attempt, 0.25)
                assert base <= delay <= base * 1.5

    def test_zero_base_means_no_wait(self):
        assert retry_delay(3, 0.0) == 0.0

    def test_fault_kinds_are_validated(self):
        with pytest.raises(ValueError):
            FaultInjection("explode")


class TestValidation:
    @pytest.mark.parametrize(
        "knob, value",
        [
            ("workers", 0),
            ("workers", -2),
            ("workers", True),
            ("max_attempts", 0),
            ("max_shards", 0),
            ("shard_timeout", 0.0),
            ("shard_timeout", -5.0),
            ("lease_timeout", 0.0),
        ],
    )
    def test_non_positive_knobs_are_rejected_with_the_knob_name(
        self, tmp_path, knob, value
    ):
        with pytest.raises(CampaignError, match=knob):
            run_campaign(str(tmp_path / "camp"), make_spec(), **{knob: value})

    def test_negative_retry_backoff_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="retry_backoff"):
            run_campaign(str(tmp_path / "camp"), make_spec(), retry_backoff=-1.0)

    def test_validation_runs_before_the_store_is_touched(self, tmp_path):
        directory = tmp_path / "camp"
        with pytest.raises(CampaignError):
            run_campaign(str(directory), make_spec(), workers=0)
        assert not directory.exists()


class TestInlineFaults:
    """The ``workers=1`` path shares the retry/quarantine failure model."""

    def test_flaky_shard_retries_and_completes(self, tmp_path, sequential_reference):
        directory = tmp_path / "camp"
        spec = make_spec()
        target = plan_shards(spec)[1].shard_id
        failed = set()

        def flaky_hook(shard):
            if shard.shard_id == target and shard.shard_id not in failed:
                failed.add(shard.shard_id)
                raise FaultInjection("fail")

        stats = run_campaign(
            str(directory), spec, shard_hook=flaky_hook, retry_backoff=0.01
        )
        assert stats.complete
        assert stats.shards_retried == 1
        assert stats.shard_attempts == stats.shards_planned + 1
        assert stats.rows_recomputed == 0
        identical_stores(directory, sequential_reference)

    def test_poison_shard_quarantines_instead_of_aborting(self, tmp_path):
        directory = tmp_path / "camp"
        spec = make_spec()
        target = plan_shards(spec)[0].shard_id

        def poison_hook(shard):
            if shard.shard_id == target:
                raise FaultInjection("fail")

        stats = run_campaign(
            str(directory), spec, shard_hook=poison_hook,
            max_attempts=2, retry_backoff=0.01,
        )
        assert not stats.complete
        assert stats.shards_quarantined == 1
        assert stats.shards_executed == stats.shards_planned - 1
        entry = CampaignStore(str(directory)).failed_shards()[target]
        assert entry["attempts"] == 2
        assert "injected shard fault" in entry["error"]

    @pytest.mark.parametrize("kind", ["kill", "hang"])
    def test_process_faults_need_the_worker_pool(self, tmp_path, kind):
        def hook(shard):
            raise FaultInjection(kind)

        with pytest.raises(CampaignError, match="workers >= 2"):
            run_campaign(str(tmp_path / "camp"), make_spec(), shard_hook=hook)

    def test_resume_skips_quarantined_until_repaired(self, tmp_path, sequential_reference):
        directory = tmp_path / "camp"
        spec = make_spec()
        target = plan_shards(spec)[2].shard_id

        def poison_hook(shard):
            if shard.shard_id == target:
                raise FaultInjection("fail")

        run_campaign(
            str(directory), spec, shard_hook=poison_hook,
            max_attempts=2, retry_backoff=0.01,
        )
        store = CampaignStore(str(directory))

        # Resume without repair: the quarantined shard stays skipped, the
        # campaign stays degraded, and the export refuses the partial store.
        resumed = run_campaign(str(directory))
        assert resumed.shards_quarantined == 1
        assert resumed.shards_executed == 0
        with pytest.raises(CampaignError, match="incomplete"):
            store.export_columns()

        # doctor --repair clears the ledger; resume then retries exactly the
        # poisoned shard and the finished store is byte-identical.
        report = store.doctor(repair=True)
        assert any("quarantine" in action for action in report["repaired"])
        final = run_campaign(str(directory))
        assert final.complete
        assert final.shards_executed == 1
        assert final.rows_recomputed == 0
        identical_stores(directory, sequential_reference)

    def test_sigint_interrupts_cleanly_and_resume_finishes(
        self, tmp_path, sequential_reference
    ):
        directory = tmp_path / "camp"
        fired = []

        def interrupt_hook(shard):
            # Ctrl-C arrives while the second shard is in flight; the loop
            # must finish that shard, release every lease and stop.
            if len(fired) == 1:
                os.kill(os.getpid(), signal.SIGINT)
            fired.append(shard.shard_id)

        stats = run_campaign(str(directory), make_spec(), shard_hook=interrupt_hook)
        assert stats.interrupted
        assert 0 < stats.shards_executed < stats.shards_planned
        lease_dir = CampaignStore(str(directory)).lease_dir
        assert not os.path.isdir(lease_dir) or not os.listdir(lease_dir)

        resumed = run_campaign(str(directory))
        assert resumed.complete
        assert resumed.shards_skipped == stats.shards_executed
        assert resumed.rows_recomputed == 0
        identical_stores(directory, sequential_reference)


class TestWorkerPool:
    """``workers >= 2``: the spawned pool with death/hang/poison recovery."""

    def test_pool_run_is_byte_identical_to_sequential(
        self, tmp_path, sequential_reference
    ):
        directory = tmp_path / "camp"
        stats = run_campaign(str(directory), make_spec(), workers=2)
        assert stats.complete
        assert stats.workers == 2
        assert stats.worker_restarts == 0
        assert stats.rows_recomputed == 0
        identical_stores(directory, sequential_reference)

    def test_killed_worker_is_replaced_and_its_shard_rerun(
        self, tmp_path, sequential_reference
    ):
        directory = tmp_path / "camp"
        spec = make_spec()
        target = plan_shards(spec)[0].shard_id
        killed = set()

        def kill_once_hook(shard):
            if shard.shard_id == target and shard.shard_id not in killed:
                killed.add(shard.shard_id)
                raise FaultInjection("kill")

        stats = run_campaign(
            str(directory), spec, workers=2,
            shard_hook=kill_once_hook, retry_backoff=0.01,
        )
        assert stats.complete
        assert stats.worker_restarts >= 1
        assert stats.shards_retried >= 1
        assert stats.rows_recomputed == 0
        identical_stores(directory, sequential_reference)

    def test_hung_shard_times_out_and_reruns(self, tmp_path, sequential_reference):
        directory = tmp_path / "camp"
        spec = make_spec()
        target = plan_shards(spec)[1].shard_id
        hung = set()

        def hang_once_hook(shard):
            if shard.shard_id == target and shard.shard_id not in hung:
                hung.add(shard.shard_id)
                raise FaultInjection("hang")

        stats = run_campaign(
            str(directory), spec, workers=2, shard_timeout=1.0,
            shard_hook=hang_once_hook, retry_backoff=0.01,
        )
        assert stats.complete
        assert stats.worker_restarts >= 1
        assert stats.rows_recomputed == 0
        identical_stores(directory, sequential_reference)

    def test_poison_shard_quarantines_with_traceback(self, tmp_path):
        directory = tmp_path / "camp"
        spec = make_spec()
        target = plan_shards(spec)[3].shard_id

        def poison_hook(shard):
            if shard.shard_id == target:
                raise FaultInjection("fail")

        stats = run_campaign(
            str(directory), spec, workers=2,
            shard_hook=poison_hook, max_attempts=2, retry_backoff=0.01,
        )
        assert not stats.complete
        assert stats.shards_quarantined == 1
        assert stats.shards_executed == stats.shards_planned - 1
        entry = CampaignStore(str(directory)).failed_shards()[target]
        assert entry["attempts"] == 2
        assert "injected shard fault" in entry["error"]
        assert "Traceback" in entry["error"]  # captured inside the worker

    def test_sigterm_abandons_in_flight_work_and_releases_leases(
        self, tmp_path, sequential_reference
    ):
        directory = tmp_path / "camp"
        fired = []

        def stop_hook(shard):
            if not fired:
                os.kill(os.getpid(), signal.SIGTERM)
            fired.append(shard.shard_id)

        stats = run_campaign(str(directory), make_spec(), workers=2, shard_hook=stop_hook)
        assert stats.interrupted
        assert not stats.complete
        lease_dir = CampaignStore(str(directory)).lease_dir
        assert not os.path.isdir(lease_dir) or not os.listdir(lease_dir)

        resumed = run_campaign(str(directory), workers=2)
        assert resumed.complete
        assert resumed.rows_recomputed == 0
        identical_stores(directory, sequential_reference)


CONCURRENT_DRIVER = """\
import json, sys
sys.path.insert(0, {src!r})
from repro.campaign import run_campaign

directory, owner, stats_path = sys.argv[1:4]
stats = run_campaign(directory, owner=owner)
payload = stats.as_dict()
payload["executed_shard_ids"] = stats.executed_shard_ids
with open(stats_path, "w") as handle:
    json.dump(payload, handle)
"""


class TestConcurrentRunners:
    def test_two_processes_partition_the_campaign_without_duplication(
        self, tmp_path, sequential_reference
    ):
        directory = tmp_path / "camp"
        CampaignStore(str(directory)).initialize(make_spec())
        driver = tmp_path / "driver.py"
        driver.write_text(CONCURRENT_DRIVER.format(src=SRC))

        procs, stats_paths = [], []
        for name in ("runner-a", "runner-b"):
            stats_path = tmp_path / f"{name}.json"
            stats_paths.append(stats_path)
            procs.append(
                subprocess.Popen(
                    [sys.executable, str(driver), str(directory), name, str(stats_path)],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                )
            )
        for proc in procs:
            stdout, stderr = proc.communicate(timeout=300)
            assert proc.returncode == 0, stderr.decode()

        results = [json.loads(path.read_text()) for path in stats_paths]
        executed = [result["executed_shard_ids"] for result in results]
        # Zero duplicated shard computations: the lease protocol partitions
        # the plan, so no shard id appears in both runners' executed lists
        # (nor twice in one).
        combined = executed[0] + executed[1]
        assert len(combined) == len(set(combined))
        assert all(result["rows_recomputed"] == 0 for result in results)
        # Between them (plus any shards one skipped because the other had
        # already committed) the campaign finished, byte-identically.
        assert any(result["complete"] for result in results)
        identical_stores(directory, sequential_reference)

    def test_foreign_fresh_lease_parks_the_shard_until_peer_commits(
        self, tmp_path, sequential_reference
    ):
        # Simulate a live peer: hold one shard's lease from the test, let a
        # run park it, then commit the shard "as the peer" and release.
        from repro.campaign.leases import LeaseManager
        from repro.campaign.shards import shard_instances, shard_tasks
        from repro.campaign.store import records_to_columns
        from repro.parallel.runner import BatchRunner
        import threading

        directory = tmp_path / "camp"
        spec = make_spec()
        store = CampaignStore(str(directory))
        store.initialize(spec)
        held = plan_shards(spec)[0]
        peer = LeaseManager(store.lease_dir, owner="peer")
        assert peer.acquire(held.shard_id)

        def commit_as_peer():
            time.sleep(0.6)
            instances = shard_instances(spec, held)
            with BatchRunner(processes=1) as runner:
                records = runner.run(shard_tasks(spec, held, instances))
            store.write_shard(held, records_to_columns(held, records))
            peer.release(held.shard_id)

        thread = threading.Thread(target=commit_as_peer)
        thread.start()
        try:
            stats = run_campaign(str(directory), spec)
        finally:
            thread.join()
        # The run never computed the peer's shard itself...
        assert held.shard_id not in stats.executed_shard_ids
        assert stats.lease_conflicts >= 1
        assert stats.shards_completed_elsewhere == 1
        # ...yet the campaign finished, byte-identical to the reference.
        assert stats.complete
        identical_stores(directory, sequential_reference)


class TestWorkerPhaseObservability:
    """REPRO_OBS=on in the pool: workers measure, the parent just commits.

    Spawned workers re-resolve the mode from the inherited environment, time
    their own IPC (two-message protocol: pickled columns, then metadata with
    the phase dict), and the parent — still off-mode itself — dispatches on
    the message tag and writes whatever phases arrive into the manifest.
    """

    def test_pool_ships_phases_and_ipc_bytes(
        self, tmp_path, monkeypatch, sequential_reference
    ):
        from repro.obs.phases import IPC_BYTES_KEY, IPC_PHASES, WALL_PHASES

        monkeypatch.setenv("REPRO_OBS", "on")
        directory = tmp_path / "camp"
        stats = run_campaign(str(directory), make_spec(), workers=2)
        assert stats.complete
        records = CampaignStore(str(directory)).completed()
        assert records
        allowed = set(WALL_PHASES) | set(IPC_PHASES) | {IPC_BYTES_KEY}
        for record in records.values():
            phases = record["phases"]
            assert set(phases) <= allowed
            assert phases[IPC_BYTES_KEY] > 0
            for key in IPC_PHASES:
                assert phases[key] >= 0.0
            attributed = sum(phases.get(key, 0.0) for key in WALL_PHASES)
            assert 0.0 < attributed <= record["wall_seconds"] + 1e-6
        # Instrumentation must not perturb the computation itself.
        identical_stores(directory, sequential_reference)
