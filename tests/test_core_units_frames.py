"""Tests for agent units and private coordinate frames."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.frames import Frame
from repro.core.units import AgentUnits

angles = st.floats(0.0, 2.0 * math.pi - 1e-9)
coords = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)
chiralities = st.sampled_from([1, -1])


class TestAgentUnits:
    def test_defaults_are_absolute(self):
        units = AgentUnits()
        assert units.length_unit == 1.0
        assert units.local_time_to_absolute(5.0) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AgentUnits(clock_rate=0.0)
        with pytest.raises(ValueError):
            AgentUnits(speed=-1.0)
        with pytest.raises(ValueError):
            AgentUnits(wake_time=-0.1)

    def test_length_unit_is_tau_times_v(self):
        assert AgentUnits(clock_rate=2.0, speed=3.0).length_unit == 6.0

    def test_length_conversions_roundtrip(self):
        units = AgentUnits(clock_rate=0.5, speed=4.0)
        assert units.absolute_length_to_local(units.local_length_to_absolute(3.0)) == pytest.approx(3.0)

    def test_move_duration_matches_model(self):
        # A move of d local units lasts d local time units, i.e. d * tau absolute.
        units = AgentUnits(clock_rate=3.0, speed=0.5)
        assert units.move_duration_local(4.0) == 4.0
        assert units.move_duration_absolute(4.0) == 12.0
        # Consistency: absolute length / absolute speed == absolute duration.
        assert units.local_length_to_absolute(4.0) / units.speed == pytest.approx(
            units.move_duration_absolute(4.0)
        )

    def test_clock_conversions(self):
        units = AgentUnits(clock_rate=2.0, wake_time=3.0)
        assert units.local_time_to_absolute(1.0) == 5.0
        assert units.absolute_time_to_local(7.0) == 2.0
        assert units.absolute_time_to_local(1.0) == -1.0

    def test_is_awake(self):
        units = AgentUnits(wake_time=2.0)
        assert not units.is_awake_at(1.9)
        assert units.is_awake_at(2.0)

    @given(st.floats(0.1, 10.0), st.floats(0.1, 10.0), st.floats(0.0, 10.0), st.floats(0.0, 100.0))
    def test_time_roundtrip(self, tau, v, wake, local):
        units = AgentUnits(tau, v, wake)
        assert units.absolute_time_to_local(units.local_time_to_absolute(local)) == pytest.approx(local)


class TestFrame:
    def test_absolute_frame_is_identity(self):
        frame = Frame.absolute()
        assert frame.local_point_to_absolute((2.0, 3.0)) == (2.0, 3.0)
        assert frame.x_axis_angle() == 0.0

    def test_invalid_chirality(self):
        with pytest.raises(ValueError):
            Frame((0.0, 0.0), 0.0, 0)

    def test_phi_normalized(self):
        assert Frame((0.0, 0.0), 2.0 * math.pi + 1.0, 1).phi == pytest.approx(1.0)

    def test_rotated_frame_axes(self):
        frame = Frame((0.0, 0.0), math.pi / 2.0, 1)
        assert frame.x_axis_direction() == pytest.approx((0.0, 1.0), abs=1e-12)
        assert frame.y_axis_direction() == pytest.approx((-1.0, 0.0), abs=1e-12)

    def test_mirror_frame_axes(self):
        frame = Frame((0.0, 0.0), 0.0, -1)
        assert frame.x_axis_direction() == pytest.approx((1.0, 0.0))
        assert frame.y_axis_direction() == pytest.approx((0.0, -1.0))

    def test_point_conversion_with_origin(self):
        frame = Frame((1.0, 2.0), 0.0, 1)
        assert frame.local_point_to_absolute((1.0, 1.0)) == (2.0, 3.0)
        assert frame.absolute_point_to_local((2.0, 3.0)) == pytest.approx((1.0, 1.0))

    def test_rot_alpha_chirality_sign(self):
        """Rot(alpha) is counterclockwise *in the agent's own system*.

        For a chirality -1 frame a locally-ccw rotation is clockwise in
        absolute terms; the paper's Lemma 3.9 construction depends on this.
        """
        plus = Frame((0.0, 0.0), 0.0, 1).rotated(math.pi / 2.0)
        minus = Frame((0.0, 0.0), 0.0, -1).rotated(math.pi / 2.0)
        assert plus.x_axis_direction() == pytest.approx((0.0, 1.0), abs=1e-12)
        assert minus.x_axis_direction() == pytest.approx((0.0, -1.0), abs=1e-12)

    def test_rotated_preserves_chirality_and_origin(self):
        frame = Frame((3.0, -1.0), 1.0, -1).rotated(0.5)
        assert frame.chi == -1
        assert frame.origin == (3.0, -1.0)

    def test_with_origin_and_translated(self):
        frame = Frame((0.0, 0.0), 1.0, 1)
        assert frame.with_origin((5.0, 5.0)).origin == (5.0, 5.0)
        assert frame.translated((1.0, -1.0)).origin == (1.0, -1.0)

    def test_orientation_relative_to(self):
        a = Frame((0.0, 0.0), 0.5, 1)
        b = Frame((0.0, 0.0), 0.2, 1)
        assert a.orientation_relative_to(b) == pytest.approx(0.3)

    def test_same_chirality(self):
        assert Frame((0.0, 0.0), 0.0, 1).same_chirality_as(Frame((1.0, 1.0), 2.0, 1))
        assert not Frame((0.0, 0.0), 0.0, 1).same_chirality_as(Frame((0.0, 0.0), 0.0, -1))

    @given(points, angles, chiralities, points)
    def test_local_absolute_roundtrip(self, origin, phi, chi, point):
        frame = Frame(origin, phi, chi)
        absolute = frame.local_point_to_absolute(point)
        assert frame.absolute_point_to_local(absolute) == pytest.approx(point, abs=1e-6)

    @given(points, angles, chiralities, points, points)
    def test_frame_maps_are_isometries(self, origin, phi, chi, p, q):
        frame = Frame(origin, phi, chi)
        pa = frame.local_point_to_absolute(p)
        qa = frame.local_point_to_absolute(q)
        assert math.hypot(pa[0] - qa[0], pa[1] - qa[1]) == pytest.approx(
            math.hypot(p[0] - q[0], p[1] - q[1]), rel=1e-9, abs=1e-9
        )

    @given(angles, chiralities, st.floats(0.0, 6.0), points)
    def test_rotated_composition(self, phi, chi, alpha, point):
        """Rot(a) then Rot(b) equals Rot(a + b) (within one frame)."""
        frame = Frame((0.0, 0.0), phi, chi)
        once = frame.rotated(alpha).rotated(alpha / 2.0)
        direct = frame.rotated(1.5 * alpha)
        assert once.local_vector_to_absolute(point) == pytest.approx(
            direct.local_vector_to_absolute(point), abs=1e-6
        )
