"""Unit tests for the contract machinery itself: registry, modes, decorators.

The contracts checked across the kernels and engines only mean something if
the machinery underneath is airtight: mode resolution mirrors the other
``REPRO_*`` knobs, re-declaration can't silently fork an invariant's meaning,
``raise`` mode raises exactly for error-severity violations, and — the
performance promise — decoration under ``off`` returns the undecorated
function so production never pays a wrapper frame.
"""

import pytest

from repro.cli import main
from repro.contracts import core
from repro.contracts.core import (
    Contract,
    ContractViolation,
    _override_mode,
    coverage_rows,
    declare,
    ensures,
    requires,
    resolve_mode,
)
from repro.geometry.backends import _CheckedBackend, get_backend


@pytest.fixture
def scratch_contract():
    """A throwaway contract, deregistered afterwards to keep coverage clean.

    Anything declared here would otherwise appear in the session's coverage
    table and trip the never-fired failure on runs that skip this file.
    """
    created = []

    def factory(contract_id, doc="scratch invariant", **kwargs):
        contract = declare(contract_id, doc, **kwargs)
        created.append(contract_id)
        return contract

    yield factory
    for contract_id in created:
        core._REGISTRY.pop(contract_id, None)


class TestModeResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(core.MODE_ENV, "check")
        assert resolve_mode("raise") == "raise"

    def test_environment_is_consulted_next(self, monkeypatch):
        monkeypatch.setenv(core.MODE_ENV, "check")
        assert resolve_mode() == "check"

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(core.MODE_ENV, raising=False)
        assert resolve_mode() == "off"

    def test_blank_environment_means_default(self, monkeypatch):
        monkeypatch.setenv(core.MODE_ENV, "  ")
        assert resolve_mode() == "off"

    @pytest.mark.parametrize("bad", ["on", "RAISE", "1"])
    def test_unknown_mode_raises(self, monkeypatch, bad):
        with pytest.raises(ValueError, match="must be one of"):
            resolve_mode(bad)
        monkeypatch.setenv(core.MODE_ENV, bad)
        with pytest.raises(ValueError, match=core.MODE_ENV):
            resolve_mode()

    def test_frozen_mode_matches_the_environment_selection(self):
        # conftest.py sets REPRO_CONTRACTS (default raise) before any import;
        # the mode frozen at import must be exactly what the environment
        # selects, and enabled() must agree with it.
        assert core.mode() == resolve_mode()
        assert core.enabled() == (core.mode() != "off")


class TestRegistry:
    def test_declare_is_idempotent_for_identical_declarations(self, scratch_contract):
        first = scratch_contract("test.scratch_idempotent")
        second = declare("test.scratch_idempotent", "scratch invariant")
        assert second is first

    def test_redeclaring_with_different_doc_fails(self, scratch_contract):
        scratch_contract("test.scratch_doc")
        with pytest.raises(ValueError, match="already declared"):
            declare("test.scratch_doc", "a different meaning")

    def test_redeclaring_with_different_severity_fails(self, scratch_contract):
        scratch_contract("test.scratch_severity")
        with pytest.raises(ValueError, match="already declared"):
            declare("test.scratch_severity", "scratch invariant", severity="warn")

    def test_get_unknown_id_raises_keyerror(self):
        with pytest.raises(KeyError):
            core.get("test.never_declared")

    def test_invalid_severity_is_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Contract("test.bad_severity", "doc", severity="fatal")

    def test_coverage_rows_are_sorted_and_complete(self):
        rows = coverage_rows()
        ids = [row["id"] for row in rows]
        assert ids == sorted(ids)
        assert "kernel.chunk_parity" in ids
        assert all(
            set(row) == {"id", "severity", "fired", "violations"} for row in rows
        )


class TestCheckSemantics:
    def test_check_counts_every_evaluation(self, scratch_contract):
        contract = scratch_contract("test.scratch_counts")
        assert contract.check(True) is True
        assert contract.fired == 1 and contract.violations == 0

    def test_raise_mode_raises_with_id_and_detail(self, scratch_contract):
        contract = scratch_contract("test.scratch_raise")
        with _override_mode("raise"):
            with pytest.raises(ContractViolation, match=r"test.scratch_raise.*\[d=3\]"):
                contract.check(False, "d=3")
        assert contract.violations == 1

    def test_check_mode_logs_and_returns_false(self, scratch_contract):
        contract = scratch_contract("test.scratch_checkmode")
        with _override_mode("check"):
            assert contract.check(False, "soft") is False
        assert contract.violations == 1

    def test_warn_severity_never_raises(self, scratch_contract):
        contract = scratch_contract("test.scratch_warn", severity="warn")
        with _override_mode("raise"):
            assert contract.check(False) is False
        assert contract.violations == 1

    def test_violation_carries_the_contract(self, scratch_contract):
        contract = scratch_contract("test.scratch_carrier")
        with _override_mode("raise"):
            with pytest.raises(ContractViolation) as excinfo:
                contract.check(False)
        assert excinfo.value.contract is contract


class TestDecorators:
    def test_off_mode_decoration_returns_the_raw_function(self, scratch_contract):
        contract = scratch_contract("test.scratch_zerocost")

        def plain(x):
            return x + 1

        with _override_mode("off"):
            assert ensures(contract, lambda result, x: result > x)(plain) is plain
            assert requires(contract, lambda x: x >= 0)(plain) is plain

    def test_requires_checks_the_arguments(self, scratch_contract):
        contract = scratch_contract("test.scratch_requires")

        # Decorate inside the override so the test is meaningful whatever
        # mode the suite was launched under.
        with _override_mode("raise"):

            @requires(contract, lambda x: x >= 0, "x must be non-negative")
            def root(x):
                return x ** 0.5

            assert root(4.0) == 2.0
            with pytest.raises(ContractViolation, match="non-negative"):
                root(-1.0)
        assert contract.fired == 2 and contract.violations == 1

    def test_ensures_checks_the_result_first(self, scratch_contract):
        contract = scratch_contract("test.scratch_ensures")

        with _override_mode("raise"):

            @ensures(contract, lambda result, x: result >= x)
            def clamp(x):
                return max(x, 0.0)

            assert clamp(-3.0) == 0.0
        assert contract.fired == 1 and contract.violations == 0

    def test_decorators_accept_a_registered_id(self, scratch_contract):
        scratch_contract("test.scratch_by_id")

        with _override_mode("raise"):

            @requires("test.scratch_by_id", lambda x: x)
            def identity(x):
                return x

            assert identity(True) is True
        assert core.get("test.scratch_by_id").fired == 1


class TestBackendWrapping:
    @pytest.mark.skipif(not core.enabled(),
                        reason="requires REPRO_CONTRACTS=check|raise")
    def test_enabled_mode_serves_a_checked_proxy(self):
        backend = get_backend("numpy")
        assert isinstance(backend, _CheckedBackend)
        assert backend.name == "numpy"

    def test_off_mode_serves_the_raw_instance(self):
        with _override_mode("off"):
            assert not isinstance(get_backend("numpy"), _CheckedBackend)

    def test_instance_passthrough_is_never_wrapped(self):
        raw = get_backend("numpy")
        assert get_backend(raw) is raw


class TestCli:
    def test_contracts_list_prints_the_registry(self, capsys):
        assert main(["contracts", "list"]) == 0
        out = capsys.readouterr().out
        assert f"mode: {core.mode()}" in out
        assert "kernel.min_distance_nonneg" in out
        assert "engine.closest_leq_initial" in out
