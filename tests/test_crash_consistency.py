"""Process-level crash consistency: ``kill -9`` at the named commit points.

Each test runs a child Python process that installs a crash hook
(:attr:`CampaignStore.crash_hook` / :attr:`JobQueue.crash_hook`) raising
``SIGKILL`` at one named point inside a durability-critical write sequence —
the exact windows a real crash can land in:

* ``shard-data-replaced``  — after the shard npz ``os.replace``, before the
  manifest append: the classic orphaned-data crash;
* ``manifest-pre-fsync``   — after the manifest line is written/flushed,
  before its fsync: the torn-manifest-tail crash;
* ``journal-pre-fsync``    — after the queue journal line is written/flushed,
  before its fsync: the torn-journal-tail crash.

After the child dies, the parent proves recovery is lossless: ``doctor
--repair`` reports a clean store, the queue replays every *acknowledged*
record, and the resumed campaign is byte-identical to an uninterrupted run
with zero recomputed shards.  The torn-tail *fuzz* (every byte-truncation of
the final line) is covered for both JSONL files as well.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.campaign import CampaignArm, CampaignSpec, CampaignStore, run_campaign
from repro.contracts.invariants import check_recovery_identity
from repro.service import JobQueue

SPEC_KWARGS = dict(
    name="crash-unit",
    arms=({"algorithm": "almost-universal-compact"},),
    classes=("type-1",),
    instances_per_cell=8,
    seed=29,
    simulator={"max_time": 1e5, "max_segments": 20_000},
    shard_size=2,
)


def make_spec():
    return CampaignSpec.from_dict(
        {**SPEC_KWARGS, "arms": list(SPEC_KWARGS["arms"]), "classes": list(SPEC_KWARGS["classes"])}
    )


def run_child(body: str, **env_extra) -> subprocess.CompletedProcess:
    """Run a crash script in a child interpreter; it must die by SIGKILL."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
    )
    # Contract raise-mode is irrelevant to the child and only adds noise.
    env.setdefault("REPRO_CONTRACTS", "off")
    env.update(env_extra)
    script = textwrap.dedent(
        f"""
        import os, signal, sys
        SPEC_KWARGS = {SPEC_KWARGS!r}
        from repro.campaign.spec import CampaignSpec
        def make_spec():
            return CampaignSpec.from_dict(dict(SPEC_KWARGS))
        def die(point):
            sys.stderr.write(f"crashing at {{point}}\\n")
            sys.stderr.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        """
    ) + textwrap.dedent(body)
    result = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, env=env
    )
    assert result.returncode == -signal.SIGKILL, (
        f"child should die by SIGKILL, got {result.returncode}:\n"
        f"{result.stdout}\n{result.stderr}"
    )
    return result


@pytest.fixture
def reference_columns(tmp_path_factory):
    """One uninterrupted run of the crash spec, for byte-identity checks."""
    directory = tmp_path_factory.mktemp("crash-reference")
    run_campaign(str(directory), make_spec())
    return CampaignStore(str(directory)).export_columns()


class TestStoreCrashPoints:
    @pytest.mark.parametrize("point", CampaignStore.CRASH_POINTS)
    def test_sigkill_then_repair_then_byte_identical_resume(
        self, tmp_path, point, reference_columns
    ):
        store_dir = tmp_path / "store"
        run_child(
            f"""
            from repro.campaign.store import CampaignStore
            from repro.campaign.orchestrator import run_campaign
            committed = 0
            def hook(point):
                global committed
                if point != {point!r}:
                    return
                committed += 1
                if committed == 2:  # let one shard commit fully first
                    die(point)
            CampaignStore.crash_hook = staticmethod(hook)
            run_campaign({str(store_dir)!r}, make_spec())
            raise SystemExit("campaign finished without crashing")
            """
        )
        store = CampaignStore(str(store_dir))
        report = store.doctor(repair=True)
        assert store.doctor()["clean"], report

        stats = run_campaign(str(store_dir))
        assert stats.complete
        # At least the one fully committed shard must have survived the
        # crash + repair: recovery never throws away acknowledged work.
        assert stats.shards_skipped >= 1
        assert check_recovery_identity(
            reference_columns,
            store.export_columns(),
            rows_recomputed=stats.rows_recomputed,
        )

    def test_manifest_torn_tail_fuzz(self, tmp_path, reference_columns):
        """Byte-truncations of the final manifest line recover losslessly.

        Also pins the torn-tail isolation fix: a fragment without its newline
        must never merge with the record the resume appends, so the write
        contracts hold on the *first* attempt (zero new violations).
        """
        from repro.contracts.invariants import STORE_MANIFEST_MATCHES_DATA

        store_dir = str(tmp_path / "store")
        run_campaign(store_dir, make_spec())
        store = CampaignStore(store_dir)
        with open(store.manifest_path, "rb") as handle:
            full = handle.read()
        lines = full.splitlines(keepends=True)
        body, last = b"".join(lines[:-1]), lines[-1]
        # Sample the truncation space (a per-byte sweep re-runs the campaign
        # hundreds of times): the empty cut, a one-byte fragment, mid-record
        # cuts, and the just-missing-the-newline cut that used to merge.
        cuts = sorted({0, 1, len(last) // 3, len(last) // 2, len(last) - 2, len(last) - 1})
        violations_before = STORE_MANIFEST_MATCHES_DATA.violations
        for cut in cuts:
            with open(store.manifest_path, "wb") as handle:
                handle.write(body + last[:cut])
            fresh = CampaignStore(store_dir)
            fresh.doctor(repair=True)
            stats = run_campaign(store_dir)
            assert stats.complete and stats.rows_recomputed == 0
        assert STORE_MANIFEST_MATCHES_DATA.violations == violations_before
        assert check_recovery_identity(
            reference_columns, store.export_columns(), rows_recomputed=0
        )


class TestQueueCrashPoints:
    def test_sigkill_between_journal_append_and_fsync(self, tmp_path):
        service_dir = tmp_path / "service"
        run_child(
            f"""
            from repro.service.queue import JobQueue
            queue = JobQueue({str(service_dir)!r})
            job, _ = queue.submit(make_spec())
            # Crash inside the *next* append: the mark_running line is
            # written but not fsynced — the torn-tail window.
            JobQueue.crash_hook = staticmethod(die)
            queue.mark_running(job.digest)
            raise SystemExit("append finished without crashing")
            """
        )
        queue = JobQueue(service_dir)
        # The acknowledged submission survived; the unacknowledged transition
        # either survived too (the write made it to disk) or was dropped as a
        # torn line — both are consistent states, silence is the only failure.
        job = queue.job(make_spec().digest())
        assert job is not None
        assert job.state in ("submitted", "running")
        assert queue.invalid_records == 0
        # The queue remains fully operational after recovery.
        queue.mark_running(job.digest, attempt=job.attempts + 1)
        queue.mark_complete(job.digest)
        assert JobQueue(service_dir).job(job.digest).state == "complete"

    def test_sigkill_mid_submission_loses_nothing_acknowledged(self, tmp_path):
        service_dir = tmp_path / "service"
        run_child(
            f"""
            from repro.service.queue import JobQueue
            JobQueue.crash_hook = staticmethod(die)
            queue = JobQueue({str(service_dir)!r})
            queue.submit(make_spec())  # dies before the fsync returns
            raise SystemExit("submit finished without crashing")
            """
        )
        queue = JobQueue(service_dir)
        # The submission was never acknowledged; whether its line survived
        # is filesystem luck, but the journal must replay without damage.
        assert queue.invalid_records == 0
        assert queue.torn_lines in (0, 1)
        for job in queue.jobs():
            assert job.state == "submitted"
