"""Parity suite for the asymmetric-radius batch engine, plus PR-2 satellites.

The asymmetric batch engine's contract mirrors the symmetric one: ``met``,
the meeting time (to 1e-9 relative), the termination reason, the closest
approach *and* the freeze event (agent / time / distance) agree with the
event-driven :func:`repro.sim.asymmetric.simulate_asymmetric` on every
float-timebase run — across all sampler classes and a grid of per-agent
radius ratios, including the degenerate equal-radius case (which must match
the symmetric engine exactly) and invalid zero radii (which both engines must
reject).  Also covered here: the engine selectors and ``BatchRunner`` routing
for asymmetric tasks, the Section 5 sweep experiment, the builder-cache
single-entry eviction bound, and the ``batch_interchangeable`` grouping
opt-in.
"""

import math

import pytest

from repro.algorithms.base import UniversalAlgorithm
from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.motion.compiler import LocalProgramBuilder
from repro.motion.instructions import Move
from repro.parallel.runner import BatchRunner, BatchTask, run_batch
from repro.sim import rounds
from repro.sim.asymmetric import simulate_asymmetric
from repro.sim.batch import batch_group_key, simulate_batch
from repro.sim.batch_asymmetric import simulate_batch_asymmetric
from repro.sim.engine import RendezvousSimulator, simulate
from repro.sim.results import TerminationReason
from repro.util.errors import KnowledgeError

MAX_TIME = 1e5
MAX_SEGMENTS = 30_000

ALL_CLASSES = (
    InstanceClass.TRIVIAL,
    InstanceClass.TYPE_1,
    InstanceClass.TYPE_2,
    InstanceClass.TYPE_3,
    InstanceClass.TYPE_4,
    InstanceClass.S1_BOUNDARY,
    InstanceClass.S2_BOUNDARY,
    InstanceClass.INFEASIBLE,
)

#: Radius ratios ``r_b / r_a`` swept by the cross-class parity test: the
#: equal-radius degenerate case, a moderate and a strong asymmetry.
RATIOS = (1.0, 0.5, 0.2)


class WalkEast(UniversalAlgorithm):
    name = "walk-east"

    def __init__(self, distance=20.0):
        self.distance = distance

    def program(self):
        yield Move(self.distance, 0.0)


def assert_outcomes_match(event, batch, *, rel=1e-9):
    __tracebackhide__ = True
    assert batch.met == event.met
    assert batch.result.termination == event.result.termination
    assert batch.frozen_agent == event.frozen_agent
    if event.met:
        assert batch.meeting_time == pytest.approx(event.meeting_time, rel=rel, abs=rel)
    if event.freeze_time is not None:
        assert batch.freeze_time == pytest.approx(event.freeze_time, rel=rel, abs=rel)
        assert batch.freeze_distance == pytest.approx(
            event.freeze_distance, rel=1e-6, abs=1e-6
        )
    if math.isfinite(event.result.min_distance):
        assert batch.result.min_distance == pytest.approx(
            event.result.min_distance, rel=rel, abs=rel
        )


class TestAsymmetricParityAcrossClasses:
    @pytest.mark.parametrize("ratio", RATIOS)
    def test_all_sampler_classes(self, ratio):
        sampler = InstanceSampler(seed=77)
        for cls in ALL_CLASSES:
            instances = sampler.batch_of_class(cls, 2)
            algorithm = get_algorithm("almost-universal-compact")
            event = [
                simulate_asymmetric(
                    instance,
                    algorithm,
                    radius_a=instance.r,
                    radius_b=instance.r * ratio,
                    max_time=MAX_TIME,
                    max_segments=MAX_SEGMENTS,
                    radius_slack=1e-9,
                )
                for instance in instances
            ]
            batch = simulate_batch_asymmetric(
                instances,
                get_algorithm("almost-universal-compact"),
                radius_a=[instance.r for instance in instances],
                radius_b=[instance.r * ratio for instance in instances],
                max_time=MAX_TIME,
                max_segments=MAX_SEGMENTS,
                radius_slack=1e-9,
            )
            for e, b in zip(event, batch):
                assert_outcomes_match(e, b)

    @pytest.mark.parametrize(
        "algorithm_name", ("stay-put", "wait-and-sweep", "dedicated", "cgkk")
    )
    def test_algorithm_spread(self, algorithm_name):
        sampler = InstanceSampler(seed=1234)
        for cls in (InstanceClass.TYPE_2, InstanceClass.TYPE_3, InstanceClass.INFEASIBLE):
            instances = sampler.batch_of_class(cls, 2)
            algorithm = get_algorithm(algorithm_name)
            try:
                event = [
                    simulate_asymmetric(
                        instance,
                        algorithm,
                        radius_a=instance.r,
                        radius_b=instance.r * 0.4,
                        max_time=MAX_TIME,
                        max_segments=MAX_SEGMENTS,
                        radius_slack=1e-9,
                    )
                    for instance in instances
                ]
            except KnowledgeError:
                continue  # dedicated witness not applicable to this class
            batch = simulate_batch_asymmetric(
                instances,
                get_algorithm(algorithm_name),
                radius_a=[instance.r for instance in instances],
                radius_b=[instance.r * 0.4 for instance in instances],
                max_time=MAX_TIME,
                max_segments=MAX_SEGMENTS,
                radius_slack=1e-9,
            )
            for e, b in zip(event, batch):
                assert_outcomes_match(e, b)

    def test_larger_radius_on_agent_b(self):
        # The frozen agent is whichever holds the larger radius — here B.
        sampler = InstanceSampler(seed=9)
        instances = sampler.batch_of_class(InstanceClass.TYPE_4, 3)
        algorithm = get_algorithm("almost-universal-compact")
        event = [
            simulate_asymmetric(
                instance, algorithm,
                radius_a=instance.r * 0.3, radius_b=instance.r,
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS, radius_slack=1e-9,
            )
            for instance in instances
        ]
        batch = simulate_batch_asymmetric(
            instances, algorithm,
            radius_a=[i.r * 0.3 for i in instances],
            radius_b=[i.r for i in instances],
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS, radius_slack=1e-9,
        )
        for e, b in zip(event, batch):
            assert_outcomes_match(e, b)
            if b.frozen_agent is not None:
                assert b.frozen_agent == "B"

    def test_max_segments_budget_matches_event_engine(self):
        instance = Instance(r=0.25, x=50.0, y=0.0, t=0.1)
        algorithm = get_algorithm("almost-universal-compact")
        event = simulate_asymmetric(
            instance, algorithm, radius_a=0.25, radius_b=0.1,
            max_time=1e9, max_segments=500,
        )
        batch = simulate_batch_asymmetric(
            [instance], algorithm, radius_a=0.25, radius_b=0.1,
            max_time=1e9, max_segments=500,
        )[0]
        assert event.result.termination == TerminationReason.MAX_SEGMENTS
        assert batch.result.termination == TerminationReason.MAX_SEGMENTS
        assert batch.result.simulated_time == pytest.approx(
            event.result.simulated_time, rel=1e-9
        )


class TestDegenerateCasesAndErrors:
    def test_equal_radii_match_symmetric_batch(self):
        sampler = InstanceSampler(seed=5)
        instances = sampler.batch_of_class(InstanceClass.TYPE_4, 4)
        algorithm = get_algorithm("almost-universal-compact")
        symmetric = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        asymmetric = simulate_batch_asymmetric(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        for s, a in zip(symmetric, asymmetric):
            assert a.frozen_agent is None  # equal radii never freeze
            assert a.met == s.met
            assert a.meeting_time == s.meeting_time
            assert a.result.termination == s.termination
            assert a.result.min_distance == pytest.approx(s.min_distance, rel=1e-12)

    def test_zero_radius_ratio_rejected_by_both_engines(self):
        instance = Instance(r=0.5, x=2.0, y=0.0)
        algorithm = get_algorithm("stay-put")
        with pytest.raises(ValueError):
            simulate_asymmetric(instance, algorithm, radius_b=0.0)
        with pytest.raises(ValueError):
            simulate_batch_asymmetric([instance], algorithm, radius_b=0.0)
        with pytest.raises(ValueError):
            simulate_batch_asymmetric([instance], algorithm, radius_a=-1.0)

    def test_radius_shape_mismatch_rejected(self):
        instances = [Instance(r=0.5, x=2.0, y=0.0)] * 3
        with pytest.raises(ValueError):
            simulate_batch_asymmetric(
                instances, get_algorithm("stay-put"), radius_a=[0.5, 0.5]
            )

    def test_invalid_budgets_rejected(self):
        instance = Instance(r=0.5, x=1.0, y=0.0)
        algorithm = get_algorithm("stay-put")
        with pytest.raises(ValueError):
            simulate_batch_asymmetric([instance], algorithm, max_time=math.inf)
        with pytest.raises(ValueError):
            simulate_batch_asymmetric([instance], algorithm, max_segments=0)
        with pytest.raises(ValueError):
            simulate_batch_asymmetric([instance], algorithm, radius_slack=-1.0)

    def test_empty_batch(self):
        assert simulate_batch_asymmetric([], get_algorithm("stay-put")) == []

    def test_trivial_instance_meets_at_time_zero_without_freeze(self):
        # Initial distance within the smaller radius: met at t=0, no freeze.
        instance = Instance(r=2.0, x=1.0, y=0.0)
        outcome = simulate_batch_asymmetric(
            [instance], get_algorithm("stay-put"),
            radius_a=2.0, radius_b=1.5, max_time=10.0,
        )[0]
        assert outcome.met and outcome.meeting_time == 0.0
        assert outcome.frozen_agent is None

    def test_initial_distance_between_radii_freezes_at_time_zero(self):
        # Within the larger radius but outside the smaller one: A freezes
        # immediately at its start position.
        instance = Instance(r=2.0, x=1.0, y=0.0)
        outcome = simulate_batch_asymmetric(
            [instance], get_algorithm("stay-put"),
            radius_a=2.0, radius_b=0.5, max_time=10.0,
        )[0]
        assert not outcome.met
        assert outcome.frozen_agent == "A"
        assert outcome.freeze_time == 0.0
        assert outcome.freeze_distance == pytest.approx(1.0)

    def test_track_min_distance_off(self):
        sampler = InstanceSampler(seed=3)
        instances = sampler.batch_of_class(InstanceClass.TYPE_1, 3)
        algorithm = get_algorithm("almost-universal-compact")
        tracked = simulate_batch_asymmetric(
            instances, algorithm,
            radius_b=[i.r * 0.5 for i in instances],
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
        )
        untracked = simulate_batch_asymmetric(
            instances, algorithm,
            radius_b=[i.r * 0.5 for i in instances],
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            track_min_distance=False,
        )
        for a, b in zip(tracked, untracked):
            assert a.met == b.met
            assert a.meeting_time == b.meeting_time
            assert a.frozen_agent == b.frozen_agent
            assert math.isinf(b.result.min_distance)


class TestFreezeSemantics:
    def test_larger_radius_agent_freezes_first(self):
        # B sleeps 10 time units; A walks east towards B.  A (radius 2) sees B
        # at distance 2 and freezes; it never gets within B's radius 0.5, and
        # the walk-east program gives B no chance to close the gap afterwards.
        instance = Instance(r=0.5, x=5.0, y=0.0, t=10.0)
        outcome = simulate_batch_asymmetric(
            [instance], WalkEast(4.0), radius_a=2.0, radius_b=0.5, max_time=100.0
        )[0]
        assert outcome.frozen_agent == "A"
        assert outcome.freeze_time == pytest.approx(3.0)
        assert outcome.freeze_distance == pytest.approx(2.0)
        assert not outcome.met
        assert outcome.result.termination is TerminationReason.PROGRAMS_FINISHED

    def test_rendezvous_at_smaller_radius_after_freeze(self):
        # Same setup but B's later walk passes through A's frozen position.
        instance = Instance(r=0.5, x=5.0, y=0.0, t=10.0, phi=math.pi)
        outcome = simulate_batch_asymmetric(
            [instance], WalkEast(6.0), radius_a=2.0, radius_b=0.5, max_time=100.0
        )[0]
        assert outcome.frozen_agent == "A"
        assert outcome.met
        assert outcome.result.meeting_distance == pytest.approx(0.5)
        assert outcome.meeting_time == pytest.approx(10.0 + (5.0 - 3.0) - 0.5)

    def test_reports_radii_in_algorithm_name(self):
        instance = Instance(r=0.5, x=2.0, y=0.0, t=3.0)
        outcome = simulate_batch_asymmetric(
            [instance], WalkEast(), radius_a=0.5, radius_b=0.25
        )[0]
        assert "r_a=0.5" in outcome.result.algorithm_name


class TestEngineSelector:
    def test_simulate_asymmetric_vectorized_engine(self, type4_instance):
        algorithm = get_algorithm("almost-universal-compact")
        event = simulate_asymmetric(
            type4_instance, algorithm,
            radius_b=type4_instance.r * 0.5, max_time=MAX_TIME,
        )
        vectorized = simulate_asymmetric(
            type4_instance, algorithm,
            radius_b=type4_instance.r * 0.5, max_time=MAX_TIME,
            engine="vectorized",
        )
        assert_outcomes_match(event, vectorized)

    def test_unknown_engine_rejected(self, type4_instance):
        with pytest.raises(ValueError):
            simulate_asymmetric(
                type4_instance, get_algorithm("stay-put"), engine="warp"
            )

    def test_vectorized_requires_float_timebase(self, type4_instance):
        with pytest.raises(ValueError):
            simulate_asymmetric(
                type4_instance, get_algorithm("stay-put"),
                timebase="exact", engine="vectorized",
            )

    def test_simulator_routes_radius_fields(self, type4_instance):
        event = RendezvousSimulator(
            max_time=MAX_TIME, radius_b=type4_instance.r * 0.5
        ).run(type4_instance, get_algorithm("almost-universal-compact"))
        vectorized = RendezvousSimulator(
            max_time=MAX_TIME, radius_b=type4_instance.r * 0.5,
            engine="vectorized",
        ).run(type4_instance, get_algorithm("almost-universal-compact"))
        assert "r_a=" in event.algorithm_name
        assert vectorized.met == event.met
        assert vectorized.meeting_time == pytest.approx(event.meeting_time, rel=1e-9)

    def test_simulate_wrapper_accepts_radii(self, type4_instance):
        result = simulate(
            type4_instance, get_algorithm("almost-universal-compact"),
            max_time=MAX_TIME, radius_a=type4_instance.r,
            radius_b=type4_instance.r * 0.5, engine="vectorized",
        )
        assert result.met

    def test_asymmetric_rejects_recording(self, type4_instance):
        with pytest.raises(ValueError):
            RendezvousSimulator(
                radius_b=0.1, record_trajectories=True
            ).run(type4_instance, get_algorithm("stay-put"))


class TestBatchRunnerAsymmetric:
    def test_vectorized_routing_matches_event_fallback(self):
        sampler = InstanceSampler(seed=11)
        instances = sampler.batch_of_class(InstanceClass.TYPE_2, 5)
        vectorized = run_batch(
            instances, "almost-universal-compact",
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            radius_a=0.9, radius_b=0.3,
        )
        event = run_batch(
            instances, "almost-universal-compact", engine="event",
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            radius_a=0.9, radius_b=0.3,
        )
        assert len(vectorized) == len(event) == 5
        for a, b in zip(vectorized, event):
            assert a["met"] == b["met"]
            assert a["termination"] == b["termination"]
            assert a["meeting_time"] == pytest.approx(b["meeting_time"], rel=1e-9)
            assert "r_a=0.9" in a["algorithm"] and "r_a=0.9" in b["algorithm"]

    def test_exact_timebase_asymmetric_falls_back_to_event(self):
        tasks = [
            BatchTask.make(
                Instance(r=2.0, x=1.0, y=0.0), "stay-put",
                max_time=10.0, timebase="exact", radius_a=2.0, radius_b=1.5,
            )
        ]
        records = BatchRunner(processes=1).run(tasks)
        assert records[0]["met"] and records[0]["timebase"] == "exact"

    def test_strict_vectorized_accepts_asymmetric_float_tasks(self):
        task = BatchTask.make(
            Instance(r=2.0, x=1.0, y=0.0), "stay-put",
            max_time=10.0, radius_a=2.0, radius_b=1.5,
        )
        records = BatchRunner(engine="vectorized").run([task])
        assert records[0]["met"]


class TestSection5Experiment:
    def test_sweep_small(self):
        from repro.experiments.section5 import run_asymmetric_radius_experiment

        result = run_asymmetric_radius_experiment(
            samples_per_type=2, seed=17, ratios=(1.0, 0.5)
        )
        assert len(result.rows) == 8  # 4 types x 2 ratios
        for row in result.rows:
            assert row["success_rate"] == 1.0, row
            if row["ratio"] == 1.0:
                assert row["freeze_rate"] == 0.0
            else:
                assert row["freeze_rate"] > 0.0

    def test_engines_agree(self):
        from repro.experiments.section5 import run_asymmetric_radius_experiment

        vectorized = run_asymmetric_radius_experiment(
            samples_per_type=2, seed=23, ratios=(0.5,)
        )
        event = run_asymmetric_radius_experiment(
            samples_per_type=2, seed=23, ratios=(0.5,), engine="event"
        )
        for a, b in zip(vectorized.rows, event.rows):
            assert a["success_rate"] == b["success_rate"]
            assert a["freeze_rate"] == b["freeze_rate"]
            assert a["meeting_time_mean"] == pytest.approx(
                b["meeting_time_mean"], rel=1e-9
            )

    def test_unknown_engine_rejected(self):
        from repro.experiments.section5 import run_asymmetric_radius_experiment

        with pytest.raises(ValueError):
            run_asymmetric_radius_experiment(engine="warp")


def _builder_with_rows(rows: int) -> LocalProgramBuilder:
    builder = LocalProgramBuilder(Move(1.0, 0.0) for _ in range(rows))
    builder.ensure_time(math.inf)
    assert len(builder) == rows
    return builder


class TestBuilderCacheBound:
    def test_single_oversized_entry_is_evicted(self, monkeypatch):
        monkeypatch.setattr(rounds, "_BUILDER_CACHE", {})
        monkeypatch.setattr(rounds, "_BUILDER_CACHE_ROW_LIMIT", 8)
        rounds._BUILDER_CACHE["huge"] = _builder_with_rows(20)
        rounds._trim_builder_cache()
        assert rounds._BUILDER_CACHE == {}  # not pinned for the process lifetime

    def test_single_entry_within_budget_is_retained(self, monkeypatch):
        monkeypatch.setattr(rounds, "_BUILDER_CACHE", {})
        monkeypatch.setattr(rounds, "_BUILDER_CACHE_ROW_LIMIT", 8)
        rounds._BUILDER_CACHE["small"] = _builder_with_rows(5)
        rounds._trim_builder_cache()
        assert set(rounds._BUILDER_CACHE) == {"small"}

    def test_lru_eviction_stops_once_within_budget(self, monkeypatch):
        monkeypatch.setattr(rounds, "_BUILDER_CACHE", {})
        monkeypatch.setattr(rounds, "_BUILDER_CACHE_ROW_LIMIT", 8)
        rounds._BUILDER_CACHE["old"] = _builder_with_rows(5)
        rounds._BUILDER_CACHE["new"] = _builder_with_rows(5)
        rounds._trim_builder_cache()
        assert set(rounds._BUILDER_CACHE) == {"new"}  # LRU order: oldest first

    def test_end_to_end_oversized_builder_not_pinned(self, monkeypatch):
        monkeypatch.setattr(rounds, "_BUILDER_CACHE", {})
        monkeypatch.setattr(rounds, "_BUILDER_CACHE_ROW_LIMIT", 4)
        instance = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.5)
        results = simulate_batch(
            [instance], get_algorithm("almost-universal-compact"),
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
        )
        assert results[0].met  # the run itself is unaffected by the eviction
        assert rounds._BUILDER_CACHE == {}


class StatefulOptedInWitness(UniversalAlgorithm):
    """Carries instance state, but declares its program independent of it."""

    name = "stateful-opted-in"
    batch_interchangeable = True

    def __init__(self):
        self.scratch = []  # non-behavioural per-object state

    def program(self):
        yield Move(20.0, 0.0)


class StatefulUndeclaredWitness(UniversalAlgorithm):
    name = "stateful-undeclared"

    def __init__(self, distance=20.0):
        self.distance = distance

    def program(self):
        yield Move(self.distance, 0.0)


class TestBatchGrouping:
    def test_opted_in_stateful_witness_groups_by_class(self):
        a, b = StatefulOptedInWitness(), StatefulOptedInWitness()
        assert batch_group_key(a) == batch_group_key(b) == StatefulOptedInWitness

    def test_undeclared_stateful_witness_degrades_to_identity(self):
        a, b = StatefulUndeclaredWitness(), StatefulUndeclaredWitness()
        assert batch_group_key(a) != batch_group_key(b)
        assert batch_group_key(a) == batch_group_key(a)

    def test_grouped_substitution_is_correct_for_opted_in_witness(self):
        # One object stands in for the other within a grouped batch call and
        # produces the same outcomes as per-object runs.
        instances = [Instance(r=0.5, x=3.0, y=0.0, t=2.75) for _ in range(2)]
        algorithms = [StatefulOptedInWitness(), StatefulOptedInWitness()]
        grouped = simulate_batch(instances, algorithms[0], max_time=100.0)
        individual = [
            simulate_batch([instance], algorithm, max_time=100.0)[0]
            for instance, algorithm in zip(instances, algorithms)
        ]
        for g, i in zip(grouped, individual):
            assert g.met == i.met and g.meeting_time == i.meeting_time

    def test_dedicated_witnesses_declare_interchangeability(self):
        for name in available_algorithms():
            algorithm = get_algorithm(name)
            if name.startswith("almost-universal"):
                # Carries a schedule: two objects may differ behaviourally.
                assert not algorithm.batch_interchangeable
        for name in ("stay-put", "linear-probe", "wait-and-sweep",
                     "aligned-delay-walk", "line-search", "lemma-3.9", "dedicated"):
            assert get_algorithm(name).batch_interchangeable, name
