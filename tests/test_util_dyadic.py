"""Tests for dyadic rationals and dyadic grids."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.util.dyadic import (
    Dyadic,
    dyadic_angles,
    dyadic_ball_grid,
    dyadic_grid_1d,
    dyadic_grid_2d,
    dyadic_range,
)


class TestDyadic:
    def test_float_value(self):
        assert float(Dyadic(3, 2)) == 0.75

    def test_fraction_value(self):
        assert Dyadic(5, 3).as_fraction() == Fraction(5, 8)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Dyadic(1, -1)

    def test_normalized_reduces_even_numerators(self):
        assert Dyadic(4, 3).normalized() == Dyadic(1, 1)

    def test_normalized_keeps_exponent_zero(self):
        assert Dyadic(6, 0).normalized() == Dyadic(6, 0)

    def test_addition_aligns_exponents(self):
        assert (Dyadic(1, 1) + Dyadic(1, 2)).as_fraction() == Fraction(3, 4)

    def test_subtraction(self):
        assert (Dyadic(3, 1) - Dyadic(1, 2)).as_fraction() == Fraction(5, 4)

    def test_multiplication(self):
        assert (Dyadic(3, 1) * Dyadic(5, 2)).as_fraction() == Fraction(15, 8)

    def test_negation_and_abs(self):
        assert (-Dyadic(3, 1)).as_fraction() == Fraction(-3, 2)
        assert abs(Dyadic(-3, 1)).as_fraction() == Fraction(3, 2)

    def test_scaled_by_pow2(self):
        assert Dyadic(3, 2).scaled_by_pow2(3).as_fraction() == Fraction(6)
        assert Dyadic(3, 0).scaled_by_pow2(-2).as_fraction() == Fraction(3, 4)

    def test_ordering_matches_value(self):
        assert Dyadic(1, 1) < Dyadic(3, 2)

    def test_is_zero(self):
        assert Dyadic(0, 5).is_zero()
        assert not Dyadic(1, 5).is_zero()

    @given(
        st.integers(-1000, 1000),
        st.integers(0, 20),
        st.integers(-1000, 1000),
        st.integers(0, 20),
    )
    def test_arithmetic_matches_fractions(self, n1, e1, n2, e2):
        a, b = Dyadic(n1, e1), Dyadic(n2, e2)
        assert (a + b).as_fraction() == a.as_fraction() + b.as_fraction()
        assert (a - b).as_fraction() == a.as_fraction() - b.as_fraction()
        assert (a * b).as_fraction() == a.as_fraction() * b.as_fraction()

    @given(st.integers(-10_000, 10_000), st.integers(0, 30))
    def test_float_conversion_exact_for_moderate_values(self, numerator, exponent):
        value = Dyadic(numerator, exponent)
        assert float(value) == float(value.as_fraction())


class TestGrids:
    def test_dyadic_range(self):
        values = [float(d) for d in dyadic_range(2, -2, 3)]
        assert values == [-0.5, -0.25, 0.0, 0.25, 0.5]

    def test_grid_1d_contents(self):
        grid = dyadic_grid_1d(1, 1)
        assert grid == [-1.0, -0.5, 0.0, 0.5, 1.0]

    def test_grid_1d_validation(self):
        with pytest.raises(ValueError):
            dyadic_grid_1d(-1, 1)

    def test_grid_2d_size(self):
        grid = dyadic_grid_2d(1, 1)
        assert len(grid) == 25
        assert (0.0, 0.0) in grid

    def test_angles_full_turn(self):
        angles = dyadic_angles(1)
        assert len(angles) == 4
        assert angles[0] == 0.0
        assert math.isclose(angles[-1], 3.0 * math.pi / 2.0)

    def test_angles_half_turn(self):
        angles = dyadic_angles(2, full_turn=False)
        assert len(angles) == 4
        assert all(angle < math.pi for angle in angles)

    def test_angles_validation(self):
        with pytest.raises(ValueError):
            dyadic_angles(-1)

    def test_ball_grid_inside_disc(self):
        points = dyadic_ball_grid(2, 2)
        assert all(math.hypot(x, y) <= 2.0 + 1e-9 for x, y in points)
        assert (0.0, 0.0) in points
        assert (2.0, 0.0) in points

    @given(st.integers(0, 4), st.integers(0, 4))
    def test_ball_grid_subset_of_square_grid(self, resolution, extent):
        ball = set(dyadic_ball_grid(resolution, extent))
        square = set(dyadic_grid_2d(resolution, extent))
        assert ball.issubset(square)
