"""Tests for the Instance model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.instance import Instance
from repro.util.errors import InvalidInstanceError


class TestValidation:
    def test_minimal_construction(self):
        inst = Instance(r=1.0, x=2.0, y=3.0)
        assert inst.tau == 1.0 and inst.v == 1.0 and inst.t == 0.0 and inst.chi == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"r": 0.0},
            {"r": -1.0},
            {"tau": 0.0},
            {"v": -0.5},
            {"t": -1.0},
            {"phi": -0.1},
            {"phi": 2.0 * math.pi},
            {"chi": 0},
            {"chi": 2},
            {"x": float("nan")},
            {"y": float("inf")},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        params = {"r": 1.0, "x": 2.0, "y": 3.0}
        params.update(kwargs)
        with pytest.raises(InvalidInstanceError):
            Instance(**params)

    def test_invalid_instance_error_is_value_error(self):
        with pytest.raises(ValueError):
            Instance(r=-1.0, x=1.0, y=1.0)


class TestDerivedProperties:
    def test_initial_distance(self):
        assert Instance(r=1.0, x=3.0, y=4.0).initial_distance == 5.0

    def test_trivial(self):
        assert Instance(r=5.0, x=3.0, y=4.0).is_trivial
        assert Instance(r=5.0, x=3.0, y=4.0).is_trivial  # boundary r = dist
        assert not Instance(r=4.9, x=3.0, y=4.0).is_trivial

    def test_synchronous(self):
        assert Instance(r=1.0, x=2.0, y=0.0).is_synchronous
        assert not Instance(r=1.0, x=2.0, y=0.0, tau=2.0).is_synchronous
        assert not Instance(r=1.0, x=2.0, y=0.0, v=0.5).is_synchronous

    def test_orientation_and_chirality_flags(self):
        assert Instance(r=1.0, x=2.0, y=0.0).same_orientation
        assert not Instance(r=1.0, x=2.0, y=0.0, phi=1.0).same_orientation
        assert Instance(r=1.0, x=2.0, y=0.0).same_chirality
        assert not Instance(r=1.0, x=2.0, y=0.0, chi=-1).same_chirality


class TestAgents:
    def test_agent_a_is_absolute_reference(self):
        agent = Instance(r=1.0, x=2.0, y=3.0, phi=1.0, tau=2.0, v=3.0, t=4.0, chi=-1).agent_a()
        assert agent.start == (0.0, 0.0)
        assert agent.frame.phi == 0.0 and agent.frame.chi == 1
        assert agent.units.clock_rate == 1.0 and agent.units.speed == 1.0
        assert agent.units.wake_time == 0.0
        assert agent.name == "A"

    def test_agent_b_carries_instance_attributes(self):
        inst = Instance(r=1.0, x=2.0, y=3.0, phi=1.0, tau=2.0, v=3.0, t=4.0, chi=-1)
        agent = inst.agent_b()
        assert agent.start == (2.0, 3.0)
        assert agent.frame.phi == pytest.approx(1.0)
        assert agent.frame.chi == -1
        assert agent.units.clock_rate == 2.0
        assert agent.units.speed == 3.0
        assert agent.units.wake_time == 4.0
        assert agent.units.length_unit == 6.0

    def test_agents_ordering(self):
        a, b = Instance(r=1.0, x=2.0, y=3.0).agents()
        assert a.name == "A" and b.name == "B"


class TestTransformsAndSerialization:
    def test_with_visibility_radius_and_delay(self):
        inst = Instance(r=1.0, x=2.0, y=3.0, t=1.0)
        assert inst.with_visibility_radius(0.5).r == 0.5
        assert inst.with_delay(2.0).t == 2.0
        # original untouched (frozen dataclass semantics)
        assert inst.r == 1.0 and inst.t == 1.0

    def test_halved_radius_no_delay(self):
        image = Instance(r=1.0, x=2.0, y=3.0, t=5.0).halved_radius_no_delay()
        assert image.r == 0.5 and image.t == 0.0
        assert image.x == 2.0 and image.y == 3.0

    def test_tuple_roundtrip(self):
        inst = Instance(r=1.0, x=2.0, y=3.0, phi=0.5, tau=2.0, v=0.5, t=1.5, chi=-1)
        assert Instance.from_tuple(inst.as_tuple()) == inst

    def test_dict_roundtrip(self):
        inst = Instance(r=1.0, x=2.0, y=3.0, phi=0.5, tau=2.0, v=0.5, t=1.5, chi=-1)
        assert Instance.from_dict(inst.as_dict()) == inst

    def test_from_dict_defaults(self):
        inst = Instance.from_dict({"r": 1.0, "x": 2.0, "y": 3.0})
        assert inst.tau == 1.0 and inst.chi == 1

    def test_describe_mentions_parameters(self):
        text = Instance(r=1.0, x=2.0, y=3.0, chi=-1).describe()
        assert "r=1" in text and "chi=-1" in text

    @given(
        st.floats(0.1, 10.0),
        st.floats(-10.0, 10.0),
        st.floats(-10.0, 10.0),
        st.floats(0.0, 2.0 * math.pi - 1e-9),
        st.floats(0.1, 5.0),
        st.floats(0.1, 5.0),
        st.floats(0.0, 5.0),
        st.sampled_from([1, -1]),
    )
    def test_roundtrip_property(self, r, x, y, phi, tau, v, t, chi):
        inst = Instance(r=r, x=x, y=y, phi=phi, tau=tau, v=v, t=t, chi=chi)
        assert Instance.from_dict(inst.as_dict()) == inst
        assert Instance.from_tuple(inst.as_tuple()) == inst
