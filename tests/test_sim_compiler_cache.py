"""Cross-call compiler cache: hits, bit-parity, bounds and eviction.

PR 4 promoted :class:`~repro.motion.compiler.IncrementalTableCompiler` state
into a cross-call cache keyed by ``(program_cache_key, spec)`` (alongside the
builder cache in :mod:`repro.sim.rounds`), so repeated campaigns — BatchRunner
re-runs, sweep grids, CLI experiments — skip trajectory recompilation
entirely.  Pinned here: an identical repeated campaign compiles *zero* new
rows, cached and fresh runs are bit-identical, the cache serves shorter *and*
longer prefixes than any previous run, non-universal programs never enter the
cache, and the entry/row bounds evict LRU-first without pinning an oversized
entry.
"""

import math

import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.motion import compiler as motion_compiler
from repro.motion.compiler import IncrementalTableCompiler, local_program_table
from repro.motion.instructions import Move
from repro.sim import rounds
from repro.sim.batch import simulate_batch
from repro.sim.batch_asymmetric import simulate_batch_asymmetric

MAX_TIME = 1e5
MAX_SEGMENTS = 30_000


@pytest.fixture
def fresh_caches(monkeypatch):
    """Run against empty cross-call caches (other suites may have warmed them)."""
    monkeypatch.setattr(rounds, "_BUILDER_CACHE", {})
    monkeypatch.setattr(rounds, "_COMPILER_CACHE", {})


def _campaign(seed=21, count=4, cls=InstanceClass.TYPE_2):
    return InstanceSampler(seed=seed).batch_of_class(cls, count)


def _fields(result):
    """Every outcome scalar, compared *exactly* — the cache claims bit-parity."""
    return (
        result.met,
        result.meeting_time,
        result.termination,
        result.min_distance,
        result.min_distance_time,
        result.simulated_time,
        result.segments_a,
        result.segments_b,
        result.windows_processed,
    )


class TestCompilerCacheHits:
    def test_repeated_campaign_recompiles_zero_rows(self, fresh_caches):
        instances = _campaign()
        algorithm = get_algorithm("almost-universal-compact")
        simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        after_first = motion_compiler.rows_compiled_total()
        simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        assert motion_compiler.rows_compiled_total() == after_first

    def test_repeated_asymmetric_campaign_recompiles_zero_rows(self, fresh_caches):
        instances = _campaign(seed=3)
        algorithm = get_algorithm("almost-universal-compact")
        kwargs = dict(
            radius_b=[instance.r * 0.5 for instance in instances],
            max_time=MAX_TIME,
            max_segments=MAX_SEGMENTS,
        )
        simulate_batch_asymmetric(instances, algorithm, **kwargs)
        after_first = motion_compiler.rows_compiled_total()
        simulate_batch_asymmetric(instances, algorithm, **kwargs)
        assert motion_compiler.rows_compiled_total() == after_first

    def test_cached_run_bit_identical_to_fresh(self, fresh_caches):
        instances = _campaign(seed=5)
        algorithm = get_algorithm("almost-universal-compact")
        fresh = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        cached = simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        for f, c in zip(fresh, cached):
            assert _fields(f) == _fields(c)

    def test_cached_compiler_serves_shorter_prefixes(self, fresh_caches):
        # A smaller follow-up campaign requests *shorter* trajectory prefixes
        # than the cached compilers have already compiled; snapshots must
        # still be bit-identical to a from-scratch run.
        instances = _campaign(seed=9, count=4)
        algorithm = get_algorithm("almost-universal-compact")
        reference = simulate_batch(
            instances[:2], algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        simulate_batch(
            instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        replay = simulate_batch(
            instances[:2], algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
        )
        for r, p in zip(reference, replay):
            assert _fields(r) == _fields(p)

    def test_non_universal_programs_never_enter_the_cache(self, fresh_caches):
        def bespoke(instance, spec, role):  # bare callable: not universal
            return [Move(5.0, 0.0)]

        simulate_batch([Instance(r=0.5, x=2.0, y=0.0)], bespoke, max_time=10.0)
        assert rounds._COMPILER_CACHE == {}

    def test_universal_without_cache_key_not_cached(self, fresh_caches):
        from repro.algorithms.base import UniversalAlgorithm

        class Keyless(UniversalAlgorithm):
            name = "keyless-walk"

            def program(self):
                yield Move(20.0, 0.0)

        simulate_batch([Instance(r=0.5, x=2.0, y=0.0)], Keyless(), max_time=50.0)
        assert rounds._COMPILER_CACHE == {}


def _compiler_with_rows(rows: int) -> IncrementalTableCompiler:
    spec = Instance(r=0.5, x=1.0, y=0.0).agents()[0]
    compiler = IncrementalTableCompiler(spec)
    compiler.table(local_program_table(Move(1.0, 0.0) for _ in range(rows)))
    assert compiler.rows_compiled == rows
    return compiler


class TestCompilerCacheBounds:
    def test_single_oversized_entry_is_evicted(self, monkeypatch):
        monkeypatch.setattr(rounds, "_COMPILER_CACHE", {})
        monkeypatch.setattr(rounds, "_COMPILER_CACHE_ROW_LIMIT", 8)
        rounds._COMPILER_CACHE["huge"] = _compiler_with_rows(20)
        rounds._trim_compiler_cache()
        assert rounds._COMPILER_CACHE == {}  # not pinned for the process lifetime

    def test_single_entry_within_budget_is_retained(self, monkeypatch):
        monkeypatch.setattr(rounds, "_COMPILER_CACHE", {})
        monkeypatch.setattr(rounds, "_COMPILER_CACHE_ROW_LIMIT", 8)
        rounds._COMPILER_CACHE["small"] = _compiler_with_rows(5)
        rounds._trim_compiler_cache()
        assert set(rounds._COMPILER_CACHE) == {"small"}

    def test_lru_eviction_stops_once_within_budget(self, monkeypatch):
        monkeypatch.setattr(rounds, "_COMPILER_CACHE", {})
        monkeypatch.setattr(rounds, "_COMPILER_CACHE_ROW_LIMIT", 8)
        rounds._COMPILER_CACHE["old"] = _compiler_with_rows(5)
        rounds._COMPILER_CACHE["new"] = _compiler_with_rows(5)
        rounds._trim_compiler_cache()
        assert set(rounds._COMPILER_CACHE) == {"new"}  # LRU order: oldest first

    def test_entry_limit_evicts_lru_first(self, monkeypatch):
        monkeypatch.setattr(rounds, "_COMPILER_CACHE", {})
        monkeypatch.setattr(rounds, "_COMPILER_CACHE_LIMIT", 2)
        for name in ("a", "b", "c"):
            rounds._COMPILER_CACHE[name] = _compiler_with_rows(1)
        rounds._trim_compiler_cache()
        assert list(rounds._COMPILER_CACHE) == ["b", "c"]

    def test_end_to_end_oversized_compiler_not_pinned(self, monkeypatch):
        # Compilers grow *after* insertion; the engines' post-run re-trim
        # (trim_compiler_cache) must evict entries that outgrew the budget.
        monkeypatch.setattr(rounds, "_BUILDER_CACHE", {})
        monkeypatch.setattr(rounds, "_COMPILER_CACHE", {})
        monkeypatch.setattr(rounds, "_COMPILER_CACHE_ROW_LIMIT", 4)
        instance = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.5)
        results = simulate_batch(
            [instance], get_algorithm("almost-universal-compact"),
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
        )
        assert results[0].met  # the run itself is unaffected by the eviction
        # The compilers that outgrew the budget were evicted by the post-run
        # trim; whatever remains (a small late-inserted entry may survive)
        # fits the row budget.
        retained = sum(
            c.rows_compiled for c in rounds._COMPILER_CACHE.values()
        )
        assert retained <= 4


class TestCacheAdmissionPolicy:
    """The campaign-scale admission hook: "shared-only" admits only agent A.

    Large campaigns hold more distinct per-instance B-side specs than the
    cache has entries; admitting them all would evict the one entry every
    instance shares (agent A's).  The policy trades B-side reuse for a
    guaranteed A-side hit — pinned here via the rows-compiled counter.
    """

    def test_policy_is_scoped_and_restored(self):
        assert rounds.compiler_cache_admission_policy() == "all"
        with rounds.compiler_cache_admission("shared-only"):
            assert rounds.compiler_cache_admission_policy() == "shared-only"
            with rounds.compiler_cache_admission("all"):
                assert rounds.compiler_cache_admission_policy() == "all"
            assert rounds.compiler_cache_admission_policy() == "shared-only"
        assert rounds.compiler_cache_admission_policy() == "all"

    def test_policy_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with rounds.compiler_cache_admission("shared-only"):
                raise RuntimeError("shard died")
        assert rounds.compiler_cache_admission_policy() == "all"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="admission policy"):
            with rounds.compiler_cache_admission("most-of-them"):
                pass

    def test_shared_only_caches_only_agent_a_specs(self, fresh_caches):
        instances = _campaign()
        algorithm = get_algorithm("almost-universal-compact")
        with rounds.compiler_cache_admission("shared-only"):
            simulate_batch(
                instances, algorithm, max_time=MAX_TIME, max_segments=MAX_SEGMENTS
            )
        assert rounds._COMPILER_CACHE, "the shared A-side compiler must be admitted"
        assert all(spec.name == "A" for _, spec in rounds._COMPILER_CACHE)

    def test_rows_recompiled_counter_pins_the_policy(self, fresh_caches):
        """shared-only recompiles exactly the B side on repeat; "all" nothing."""
        instances = _campaign()
        algorithm = get_algorithm("almost-universal-compact")
        kwargs = dict(max_time=MAX_TIME, max_segments=MAX_SEGMENTS)

        with rounds.compiler_cache_admission("shared-only"):
            before = motion_compiler.rows_compiled_total()
            simulate_batch(instances, algorithm, **kwargs)
            cold_rows = motion_compiler.rows_compiled_total() - before
            simulate_batch(instances, algorithm, **kwargs)
            recompiled = motion_compiler.rows_compiled_total() - before - cold_rows
        # B-side trajectories were not retained -> some rows recompile ...
        assert recompiled > 0
        # ... but strictly fewer than a cold run: the admitted A-side
        # compiler (and the builder cache) still serve their rows.
        assert recompiled < cold_rows

        # Same campaign under the default policy: zero rows on repeat.
        rounds._COMPILER_CACHE.clear()
        rounds._BUILDER_CACHE.clear()
        simulate_batch(instances, algorithm, **kwargs)
        after_cold = motion_compiler.rows_compiled_total()
        simulate_batch(instances, algorithm, **kwargs)
        assert motion_compiler.rows_compiled_total() == after_cold

    def test_results_do_not_depend_on_the_policy(self, fresh_caches):
        instances = _campaign(seed=9)
        algorithm = get_algorithm("almost-universal-compact")
        kwargs = dict(max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
        with rounds.compiler_cache_admission("shared-only"):
            restricted = simulate_batch(instances, algorithm, **kwargs)
        rounds._COMPILER_CACHE.clear()
        rounds._BUILDER_CACHE.clear()
        default = simulate_batch(instances, algorithm, **kwargs)
        for a, b in zip(restricted, default):
            assert _fields(a) == _fields(b)

    def test_entry_budget_getter_tracks_the_limit(self, monkeypatch):
        assert rounds.compiler_cache_entry_budget() == rounds._COMPILER_CACHE_LIMIT
        monkeypatch.setattr(rounds, "_COMPILER_CACHE_LIMIT", 7)
        assert rounds.compiler_cache_entry_budget() == 7
