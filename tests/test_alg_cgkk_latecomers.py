"""Tests for the CGKK and Latecomers substitute procedures and their contracts."""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.cgkk import (
    CGKK,
    cgkk_meeting_phase_bound,
    cgkk_probe_schedule,
    cgkk_program,
    cgkk_relative_map,
    cgkk_supported,
    cgkk_target_displacement,
)
from repro.algorithms.latecomers import (
    Latecomers,
    latecomers_meeting_phase_bound,
    latecomers_probe_schedule,
    latecomers_program,
    latecomers_supported,
    latecomers_target_displacement,
)
from repro.core.instance import Instance
from repro.motion.instructions import Move, Wait
from repro.sim.engine import simulate


class TestCGKKStructure:
    def test_probes_come_in_out_and_back_pairs(self):
        instructions = list(itertools.islice(cgkk_program(), 20))
        for out_leg, back_leg in zip(instructions[0::2], instructions[1::2]):
            assert isinstance(out_leg, Move) and isinstance(back_leg, Move)
            assert back_leg.dx == -out_leg.dx and back_leg.dy == -out_leg.dy

    def test_probe_schedule_orders_by_norm_within_phase(self):
        phase1 = [p for k, p in itertools.takewhile(lambda kp: kp[0] == 1, cgkk_probe_schedule())]
        norms = [math.hypot(*p) for p in phase1]
        assert norms == sorted(norms)
        assert (0.0, 0.0) not in phase1

    def test_probe_schedule_phases_grow(self):
        probes = list(itertools.islice(cgkk_probe_schedule(max_phase=2), 1000))
        assert {k for k, _ in probes} == {1, 2}
        extents = [max(abs(p[0]), abs(p[1])) for k, p in probes if k == 2]
        assert max(extents) == pytest.approx(2.0)


class TestCGKKAnalysis:
    def test_relative_map_identity_minus_for_aligned(self):
        inst = Instance(r=0.5, x=1.0, y=0.0, phi=0.0, v=1.0)
        assert abs(cgkk_relative_map(inst).determinant()) < 1e-12
        assert not cgkk_supported(inst)

    def test_supported_rotated(self):
        inst = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1)
        assert cgkk_supported(inst)

    def test_supported_speed_difference(self):
        inst = Instance(r=0.5, x=1.0, y=0.0, v=2.0)
        assert cgkk_supported(inst)

    def test_not_supported_different_clock(self):
        inst = Instance(r=0.5, x=1.0, y=0.0, tau=2.0, v=2.0)
        assert not cgkk_supported(inst)

    def test_reflection_with_unit_speed_not_supported(self):
        inst = Instance(r=0.5, x=1.0, y=0.0, chi=-1, v=1.0)
        assert not cgkk_supported(inst)

    def test_target_displacement_right_angle(self):
        inst = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1)
        target = cgkk_target_displacement(inst)
        assert target == pytest.approx((0.0, 1.0), abs=1e-12)

    def test_target_displacement_closes_gap(self):
        """Executing Move(u*) simultaneously must put both agents on the same point."""
        inst = Instance(r=0.5, x=1.5, y=-0.5, phi=2.1, chi=1, v=1.0)
        ux, uy = cgkk_target_displacement(inst)
        spec_b = inst.agent_b()
        end_a = (ux, uy)
        disp_b = spec_b.frame.local_vector_to_absolute((ux, uy))
        end_b = (inst.x + disp_b[0] * spec_b.units.length_unit,
                 inst.y + disp_b[1] * spec_b.units.length_unit)
        assert end_a == pytest.approx(end_b, abs=1e-9)

    def test_phase_bound_is_positive(self):
        inst = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1)
        assert cgkk_meeting_phase_bound(inst) >= 1


class TestCGKKContract:
    @pytest.mark.parametrize(
        "instance",
        [
            Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2.0, chi=1, t=0.0),
            Instance(r=0.4, x=-1.0, y=0.5, phi=math.pi, chi=1, t=0.0),
            Instance(r=0.3, x=1.0, y=0.0, phi=0.0, chi=1, v=2.0, t=0.0),
            Instance(r=0.3, x=0.5, y=1.0, phi=1.0, chi=-1, v=0.5, t=0.0),
            Instance(r=0.25, x=2.0, y=1.0, phi=math.pi / 4.0, chi=1, t=0.0),
        ],
    )
    def test_rendezvous_on_contract_instances(self, instance):
        assert cgkk_supported(instance)
        result = simulate(instance, CGKK(), max_time=1e6, max_segments=300_000)
        assert result.met

    def test_no_rendezvous_for_identical_attributes(self):
        # Identical frames, clocks, speeds and simultaneous start: the relative
        # position can never change, whatever the algorithm does.
        instance = Instance(r=0.5, x=3.0, y=0.0, t=0.0)
        result = simulate(instance, CGKK(), max_time=1e3, max_segments=50_000)
        assert not result.met
        assert result.min_distance == pytest.approx(3.0)

    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(0.3, 1.0),
        st.floats(0.5, 2.0),
        st.floats(0.3, 2.0 * math.pi - 0.3),
        st.floats(-2.0, 2.0),
        st.floats(-2.0, 2.0),
    )
    def test_rendezvous_random_rotated_instances(self, r, v, phi, x, y):
        if math.hypot(x, y) <= r or math.hypot(x, y) < 0.2:
            return
        instance = Instance(r=r, x=x, y=y, phi=phi, chi=1, v=v, t=0.0)
        if not cgkk_supported(instance):
            return
        result = simulate(instance, CGKK(), max_time=1e7, max_segments=400_000)
        assert result.met


class TestLatecomersStructure:
    def test_probe_structure(self):
        instructions = list(itertools.islice(latecomers_program(), 30))
        # Pattern: Wait, Move(w), Move(-w), Wait, ...
        for index in range(0, 30, 3):
            assert isinstance(instructions[index], Wait)
            assert isinstance(instructions[index + 1], Move)
            assert isinstance(instructions[index + 2], Move)
            assert instructions[index + 2].dx == -instructions[index + 1].dx

    def test_wait_grows_with_phase(self):
        probes = list(itertools.islice(latecomers_probe_schedule(max_phase=3), 10_000))
        phases = {k for k, _ in probes}
        assert phases == {1, 2, 3}


class TestLatecomersAnalysis:
    def test_supported_predicate(self):
        assert latecomers_supported(Instance(r=0.6, x=1.0, y=0.0, t=1.5))
        assert not latecomers_supported(Instance(r=0.6, x=1.0, y=0.0, t=0.2))
        assert not latecomers_supported(Instance(r=0.6, x=1.0, y=0.0, t=1.5, phi=1.0))
        assert not latecomers_supported(Instance(r=0.6, x=1.0, y=0.0, t=1.5, chi=-1))
        assert not latecomers_supported(Instance(r=0.6, x=1.0, y=0.0, t=1.5, tau=2.0))

    def test_target_displacement_clipped_by_delay(self):
        # When t < dist the best window displacement has length exactly t.
        inst = Instance(r=0.9, x=2.0, y=0.0, t=1.5)
        assert latecomers_target_displacement(inst) == pytest.approx((1.5, 0.0))
        # When t >= dist the target is (x, y) itself.
        inst2 = Instance(r=0.5, x=2.0, y=0.0, t=3.0)
        assert latecomers_target_displacement(inst2) == pytest.approx((2.0, 0.0))

    def test_phase_bound_requires_contract(self):
        with pytest.raises(ValueError):
            latecomers_meeting_phase_bound(Instance(r=0.5, x=3.0, y=0.0, t=0.1))
        assert latecomers_meeting_phase_bound(Instance(r=0.6, x=1.0, y=0.0, t=1.5)) >= 1


class TestLatecomersContract:
    @pytest.mark.parametrize(
        "instance",
        [
            Instance(r=0.6, x=1.0, y=0.0, t=1.5),
            Instance(r=0.5, x=0.0, y=2.0, t=2.25),
            Instance(r=0.5, x=1.0, y=1.0, t=2.0),
            Instance(r=0.75, x=-2.0, y=0.0, t=1.5),
        ],
    )
    def test_rendezvous_on_contract_instances(self, instance):
        assert latecomers_supported(instance)
        result = simulate(instance, Latecomers(), max_time=1e6, max_segments=400_000)
        assert result.met

    def test_no_rendezvous_below_threshold(self):
        # t < dist - r: infeasible, so in particular Latecomers cannot meet.
        instance = Instance(r=0.5, x=3.0, y=0.0, t=1.0)
        result = simulate(instance, Latecomers(), max_time=2e3, max_segments=100_000)
        assert not result.met
        # The closest approach can never beat dist - t.
        assert result.min_distance >= instance.initial_distance - instance.t - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.4, 1.0), st.floats(-2.0, 2.0), st.floats(-2.0, 2.0), st.floats(0.1, 2.0))
    def test_rendezvous_random_instances(self, r, x, y, slack):
        distance = math.hypot(x, y)
        if distance <= r or distance < 0.3:
            return
        instance = Instance(r=r, x=x, y=y, t=distance - r + slack)
        result = simulate(instance, Latecomers(), max_time=1e7, max_segments=400_000)
        assert result.met
