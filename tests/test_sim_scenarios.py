"""The scenario layer: registries, validation, lowering, and parity.

Two new scenario families ship with the unified event engine —
``heterogeneous-speed`` (per-agent speed factors) and ``stalling`` (a faulty
agent that pauses mid-run) — and both must satisfy the same parity contract
as the base engines: per instance, the event path and the vectorized batch
path agree on ``met``, the meeting time (1e-9 relative), the termination
reason and the closest approach.  The suites here pin:

* the event-kind and scenario registries (closed vocabularies, idempotent
  re-registration, activation by options);
* campaign-boundary validation of every scenario-owned option, including the
  derived ``*_range`` options and their draw resolution;
* the lowering primitives (``scaled_agents``, ``stalled_segments`` /
  ``stalled_table``) shared by the event and batch paths;
* event-vs-vectorized parity for each new family alone and composed with the
  Section 5 asymmetric radii.
"""

import math

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.contracts import check_engine_parity, check_outcome_parity
from repro.core.classification import InstanceClass
from repro.core.instance import Instance
from repro.motion.compiler import (
    compile_trajectory,
    compile_trajectory_table,
    stalled_segments,
    stalled_table,
)
from repro.sim.asymmetric import simulate_asymmetric
from repro.sim.batch import simulate_batch
from repro.sim.batch_asymmetric import simulate_batch_asymmetric
from repro.sim.engine import simulate
from repro.sim.events import (
    EventKind,
    get_event_kind,
    register_event_kind,
    registered_event_kinds,
)
from repro.sim.scenarios import (
    ScenarioFamily,
    available_scenarios,
    get_scenario,
    register_scenario,
    resolve_stall_options,
    scaled_agents,
    scenarios_for_options,
    stall_schedule,
    validate_scenario_options,
)
from repro.sim.timebase import get_timebase

MAX_TIME = 1e5
MAX_SEGMENTS = 30_000
ALGORITHM = "almost-universal-compact"


class TestEventKindRegistry:
    def test_shipped_kinds(self):
        names = [kind.name for kind in registered_event_kinds()]
        assert names == sorted(names)
        assert {"meeting", "freeze", "stall"} <= set(names)

    def test_declared_semantics(self):
        assert get_event_kind("meeting").resolution == "terminate"
        assert get_event_kind("freeze").detection == "dual_radius"
        assert get_event_kind("freeze").tracking_clamp == "clamp_at_event"
        assert get_event_kind("stall").detection == "scheduled"
        assert get_event_kind("stall").resolution == "pause_resume"

    def test_closed_vocabularies(self):
        with pytest.raises(ValueError):
            EventKind("x", "psychic", "terminate", "full_window")
        with pytest.raises(ValueError):
            EventKind("x", "first_hit", "explode", "full_window")
        with pytest.raises(ValueError):
            EventKind("x", "first_hit", "terminate", "sideways")

    def test_reregistration(self):
        kind = get_event_kind("meeting")
        assert register_event_kind(kind) is kind
        clash = EventKind("meeting", "first_hit", "terminate", "clamp_at_event")
        with pytest.raises(ValueError, match="different semantics"):
            register_event_kind(clash)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            get_event_kind("earthquake")


class TestScenarioRegistry:
    def test_shipped_families(self):
        assert {"symmetric", "asymmetric-radii", "heterogeneous-speed",
                "stalling"} <= set(available_scenarios())

    def test_event_kinds_resolve(self):
        for name in available_scenarios():
            family = get_scenario(name)
            for kind in family.event_kinds:
                assert get_event_kind(kind).name == kind

    def test_activation_by_options(self):
        assert [f.name for f in scenarios_for_options({})] == ["symmetric"]
        assert [f.name for f in scenarios_for_options({"speed_a": 2.0})] == [
            "heterogeneous-speed"
        ]
        names = [
            f.name
            for f in scenarios_for_options(
                {"radius_a": 1.0, "stall_agent": "A"}
            )
        ]
        assert names == ["asymmetric-radii", "stalling"]

    def test_duplicate_registration_rejected(self):
        family = get_scenario("symmetric")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(family)

    def test_undeclared_event_kind_rejected(self):
        with pytest.raises(KeyError):
            ScenarioFamily(
                name="haunted",
                event_kinds=("poltergeist",),
                options=(),
                doc="",
                validate=lambda options, where, error: None,
                sample_options=lambda rng: {},
            )

    def test_samplers_draw_owned_options(self):
        rng = np.random.default_rng(3)
        for name in available_scenarios():
            family = get_scenario(name)
            drawn = family.sample_options(rng)
            assert set(drawn) <= set(family.options)
            # A drawn option set must pass the family's own validation.
            validate_scenario_options(drawn, where=f"sampled {name}")


class TestScenarioValidation:
    def test_valid_options_pass(self):
        validate_scenario_options({})
        validate_scenario_options({"speed_a": 2.0, "speed_b": 0.5})
        validate_scenario_options({"radius_a": 1.0, "radius_b": 2.0})
        validate_scenario_options(
            {"stall_agent": "A", "stall_time": 0.0, "stall_duration": 1.0}
        )
        validate_scenario_options(
            {"stall_agent": "B", "stall_time_range": [0.0, 10.0],
             "stall_duration_range": [0.5, 2.0]}
        )

    @pytest.mark.parametrize("options", [
        {"speed_a": 0.0},
        {"speed_b": -1.0},
        {"speed_a": math.inf},
        {"speed_a": "fast"},
        {"radius_a": 0.0},
        {"radius_b": math.nan},
        {"stall_agent": "A"},
        {"stall_time": 1.0, "stall_duration": 1.0},
        {"stall_agent": "C", "stall_time": 1.0, "stall_duration": 1.0},
        {"stall_agent": "A", "stall_time": -1.0, "stall_duration": 1.0},
        {"stall_agent": "A", "stall_time": 1.0, "stall_duration": 0.0},
        {"stall_agent": "A", "stall_time": 1.0, "stall_duration": math.inf},
        {"stall_agent": "A", "stall_time": 1.0, "stall_time_range": [0.0, 2.0],
         "stall_duration": 1.0},
        {"stall_agent": "A", "stall_time_range": [3.0, 2.0],
         "stall_duration": 1.0},
        {"stall_agent": "A", "stall_time_range": [0.0, 2.0],
         "stall_duration_range": [0.0, 2.0]},
        {"stall_agent": "A", "stall_time_range": [0.0, 2.0]},
    ])
    def test_invalid_options_rejected(self, options):
        with pytest.raises(ValueError):
            validate_scenario_options(options)

    def test_custom_error_type(self):
        class BoundaryError(Exception):
            pass

        with pytest.raises(BoundaryError):
            validate_scenario_options({"speed_a": -2.0}, error=BoundaryError)

    def test_stall_schedule_trio(self):
        assert stall_schedule(None, None, None) is None
        assert stall_schedule("A", 2.0, 3.0) == ("A", 2.0, 3.0)
        with pytest.raises(ValueError, match="together"):
            stall_schedule("A", None, 3.0)

    def test_resolve_stall_options_draws_and_pops(self):
        options = {
            "stall_agent": "A",
            "stall_time_range": [2.0, 4.0],
            "stall_duration_range": [1.0, 1.5],
        }
        resolved = resolve_stall_options(options, np.random.default_rng(11))
        assert resolved is options
        assert "stall_time_range" not in options
        assert "stall_duration_range" not in options
        assert 2.0 <= options["stall_time"] <= 4.0
        assert 1.0 <= options["stall_duration"] <= 1.5

    def test_resolve_is_deterministic(self):
        draws = [
            resolve_stall_options(
                {"stall_time_range": [0.0, 10.0], "stall_duration_range": [1.0, 2.0]},
                np.random.default_rng(7),
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]


class TestScaledAgents:
    def test_identity_fast_path(self):
        instance = Instance(r=0.5, x=2.0, y=1.0)
        assert scaled_agents(instance) == instance.agents()

    def test_scaling_touches_only_speed(self):
        instance = Instance(r=0.5, x=2.0, y=1.0, tau=0.7, v=1.3, t=0.4)
        base_a, base_b = instance.agents()
        spec_a, spec_b = scaled_agents(instance, 2.0, 0.25)
        assert spec_a.units.speed == base_a.units.speed * 2.0
        assert spec_b.units.speed == base_b.units.speed * 0.25
        for base, scaled in ((base_a, spec_a), (base_b, spec_b)):
            assert scaled.units.clock_rate == base.units.clock_rate
            assert scaled.units.wake_time == base.units.wake_time
            assert scaled.frame == base.frame
            assert scaled.name == base.name

    @pytest.mark.parametrize("factor", [0.0, -1.0, math.inf, math.nan])
    def test_invalid_factor_rejected(self, factor):
        instance = Instance(r=0.5, x=2.0, y=1.0)
        with pytest.raises(ValueError):
            scaled_agents(instance, speed_a=factor)


class TestStallLowering:
    def _table(self, horizon=40.0):
        instance = Instance(r=0.5, x=3.0, y=0.0)
        spec_a, _ = instance.agents()
        algorithm = get_algorithm(ALGORITHM)
        program = algorithm.program_for(instance, spec_a, "A")
        return compile_trajectory_table(
            spec_a, program, horizon=horizon, max_segments=MAX_SEGMENTS
        )

    def test_table_splice_structure(self):
        table = self._table()
        count = table.segments
        onset = float(table.start_time[min(2, count - 1)]) - 1e-9
        duration = 3.5
        stalled = stalled_table(table, onset, duration)
        assert stalled.segments == count + 1
        insert = int(np.searchsorted(table.start_time[:count], onset, side="left"))
        # The stall row: starts at the boundary, zero velocity, holds position.
        assert stalled.start_time[insert] == table.start_time[insert]
        assert stalled.duration[insert] == duration
        assert stalled.vel_x[insert] == 0.0 and stalled.vel_y[insert] == 0.0
        assert stalled.start_x[insert] == table.start_x[insert]
        assert stalled.start_y[insert] == table.start_y[insert]
        # Earlier motion untouched; later rows shifted by the stall.
        assert np.array_equal(stalled.start_time[:insert], table.start_time[:insert])
        assert np.array_equal(
            stalled.start_time[insert + 1 : count + 1],
            table.start_time[insert:count] + duration,
        )
        assert np.array_equal(
            stalled.start_x[insert + 1 : count + 1], table.start_x[insert:count]
        )
        assert stalled.exhausted == table.exhausted

    def test_onset_beyond_table_is_identity(self):
        table = self._table(horizon=10.0)
        assert stalled_table(table, 1e9, 2.0) is table

    def test_segment_stream_matches_table(self):
        instance = Instance(r=0.5, x=3.0, y=0.0)
        spec_a, _ = instance.agents()
        algorithm = get_algorithm(ALGORITHM)
        onset, duration = 4.0, 2.5
        tb = get_timebase("float")
        program = algorithm.program_for(instance, spec_a, "A")
        segments = list(
            _take(stalled_segments(
                compile_trajectory(spec_a, program, timebase=tb),
                onset, duration, tb,
            ), 12)
        )
        table = stalled_table(self._table(horizon=200.0), onset, duration)
        for k, segment in enumerate(segments):
            assert segment.start_time == table.start_time[k]
            assert segment.duration == pytest.approx(table.duration[k], rel=1e-12)
            assert segment.velocity[0] == table.vel_x[k]
            assert segment.velocity[1] == table.vel_y[k]


def _take(iterator, n):
    for _, item in zip(range(n), iterator):
        yield item


class TestHeterogeneousSpeedParity:
    @pytest.mark.parametrize("cls", [InstanceClass.TYPE_1, InstanceClass.TYPE_3])
    def test_event_vs_vectorized(self, cls):
        sampler = InstanceSampler(seed=101)
        instances = sampler.batch_of_class(cls, 4)
        rng = np.random.default_rng(41)
        speeds_a = rng.uniform(0.3, 3.0, len(instances))
        speeds_b = rng.uniform(0.3, 3.0, len(instances))
        batch = simulate_batch(
            instances, get_algorithm(ALGORITHM),
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            speed_a=speeds_a, speed_b=speeds_b,
        )
        for instance, result, sa, sb in zip(instances, batch, speeds_a, speeds_b):
            event = simulate(
                instance, get_algorithm(ALGORITHM),
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS, timebase="float",
                speed_a=float(sa), speed_b=float(sb),
            )
            assert check_engine_parity(event, result)
            assert result.segments_a == event.segments_a
            assert result.segments_b == event.segments_b

    def test_engine_selector(self, type4_instance):
        kwargs = dict(max_time=MAX_TIME, timebase="float",
                      speed_a=1.7, speed_b=0.6)
        event = simulate(type4_instance, get_algorithm(ALGORITHM), **kwargs)
        vectorized = simulate(type4_instance, get_algorithm(ALGORITHM),
                              engine="vectorized", **kwargs)
        assert check_engine_parity(event, vectorized)

    def test_unit_factors_reproduce_base_engine(self):
        sampler = InstanceSampler(seed=5)
        instances = sampler.batch_of_class(InstanceClass.TYPE_2, 3)
        base = simulate_batch(instances, get_algorithm(ALGORITHM),
                              max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
        scaled = simulate_batch(instances, get_algorithm(ALGORITHM),
                                max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
                                speed_a=1.0, speed_b=1.0)
        for a, b in zip(base, scaled):
            assert a.met == b.met
            assert a.meeting_time == b.meeting_time
            assert a.min_distance == b.min_distance


class TestStallingParity:
    @pytest.mark.parametrize("agent", ["A", "B"])
    def test_event_vs_vectorized(self, agent):
        sampler = InstanceSampler(seed=77)
        instances = sampler.batch_of_class(InstanceClass.TYPE_2, 4)
        rng = np.random.default_rng(13)
        times = rng.uniform(0.0, 20.0, len(instances))
        durations = rng.uniform(0.5, 10.0, len(instances))
        batch = simulate_batch(
            instances, get_algorithm(ALGORITHM),
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            stall_agent=agent, stall_time=times, stall_duration=durations,
        )
        for instance, result, onset, duration in zip(
            instances, batch, times, durations
        ):
            event = simulate(
                instance, get_algorithm(ALGORITHM),
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS, timebase="float",
                stall_agent=agent, stall_time=float(onset),
                stall_duration=float(duration),
            )
            assert check_engine_parity(event, result)
            # The stall snaps to a segment boundary, so the inserted segment
            # is counted identically on both paths.
            assert result.segments_a == event.segments_a
            assert result.segments_b == event.segments_b

    def test_stall_delays_or_preserves_meeting(self, type2_instance):
        base = simulate(type2_instance, get_algorithm(ALGORITHM),
                        max_time=MAX_TIME, timebase="float")
        stalled = simulate(type2_instance, get_algorithm(ALGORITHM),
                           max_time=MAX_TIME, timebase="float",
                           stall_agent="A", stall_time=0.0, stall_duration=5.0)
        assert base.met and stalled.met
        assert stalled.meeting_time >= base.meeting_time - 1e-9

    def test_stall_on_exact_timebase(self, type2_instance):
        exact = simulate(type2_instance, get_algorithm(ALGORITHM),
                         max_time=1e4, timebase="exact",
                         stall_agent="B", stall_time=2.0, stall_duration=3.0)
        floaty = simulate(type2_instance, get_algorithm(ALGORITHM),
                          max_time=1e4, timebase="float",
                          stall_agent="B", stall_time=2.0, stall_duration=3.0)
        assert exact.met == floaty.met
        if exact.met:
            assert exact.meeting_time == pytest.approx(
                floaty.meeting_time, rel=1e-9
            )

    def test_engine_selector(self, type4_instance):
        kwargs = dict(max_time=MAX_TIME, timebase="float",
                      stall_agent="B", stall_time=1.5, stall_duration=4.0)
        event = simulate(type4_instance, get_algorithm(ALGORITHM), **kwargs)
        vectorized = simulate(type4_instance, get_algorithm(ALGORITHM),
                              engine="vectorized", **kwargs)
        assert check_engine_parity(event, vectorized)


class TestComposedScenarioParity:
    def test_asymmetric_radii_with_speed_and_stall(self):
        sampler = InstanceSampler(seed=19)
        instances = sampler.batch_of_class(InstanceClass.TYPE_1, 4)
        rng = np.random.default_rng(23)
        radii_a = rng.uniform(0.5, 3.0, len(instances))
        radii_b = rng.uniform(0.5, 3.0, len(instances))
        speeds_a = rng.uniform(0.5, 2.0, len(instances))
        speeds_b = rng.uniform(0.5, 2.0, len(instances))
        times = rng.uniform(0.0, 15.0, len(instances))
        durations = rng.uniform(0.5, 8.0, len(instances))
        batch = simulate_batch_asymmetric(
            instances, get_algorithm(ALGORITHM),
            radius_a=radii_a, radius_b=radii_b,
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
            speed_a=speeds_a, speed_b=speeds_b,
            stall_agent="B", stall_time=times, stall_duration=durations,
        )
        for k, (instance, outcome) in enumerate(zip(instances, batch)):
            event = simulate_asymmetric(
                instance, get_algorithm(ALGORITHM),
                radius_a=float(radii_a[k]), radius_b=float(radii_b[k]),
                max_time=MAX_TIME, max_segments=MAX_SEGMENTS,
                speed_a=float(speeds_a[k]), speed_b=float(speeds_b[k]),
                stall_agent="B", stall_time=float(times[k]),
                stall_duration=float(durations[k]),
            )
            assert check_outcome_parity(event, outcome)

    def test_stalled_frozen_agent_discards_pending_stall(self):
        # Freeze the stalled agent before its stall onset: both paths must
        # agree that the stall never happens (the frozen agent is stationary).
        instance = Instance(r=0.5, x=4.0, y=0.0)
        kwargs = dict(
            radius_a=3.5, radius_b=0.5, max_time=MAX_TIME,
            stall_agent="A", stall_time=200.0, stall_duration=50.0,
        )
        event = simulate_asymmetric(instance, get_algorithm(ALGORITHM), **kwargs)
        batch = simulate_batch_asymmetric(
            [instance], get_algorithm(ALGORITHM), **kwargs
        )[0]
        assert event.frozen_agent == "A"
        assert check_outcome_parity(event, batch)


class TestBatchOptionShapes:
    def test_scalar_options_broadcast(self):
        sampler = InstanceSampler(seed=31)
        instances = sampler.batch_of_class(InstanceClass.TYPE_2, 3)
        per_instance = simulate_batch(
            instances, get_algorithm(ALGORITHM),
            max_time=MAX_TIME, speed_a=[1.5] * 3, speed_b=[0.8] * 3,
        )
        scalar = simulate_batch(
            instances, get_algorithm(ALGORITHM),
            max_time=MAX_TIME, speed_a=1.5, speed_b=0.8,
        )
        for a, b in zip(per_instance, scalar):
            assert a.met == b.met
            assert a.meeting_time == b.meeting_time

    def test_wrong_length_rejected(self):
        sampler = InstanceSampler(seed=31)
        instances = sampler.batch_of_class(InstanceClass.TYPE_2, 3)
        with pytest.raises(ValueError, match="speed_a"):
            simulate_batch(instances, get_algorithm(ALGORITHM),
                           max_time=MAX_TIME, speed_a=[1.0, 2.0])

    def test_partial_stall_trio_rejected(self):
        sampler = InstanceSampler(seed=31)
        instances = sampler.batch_of_class(InstanceClass.TYPE_2, 2)
        with pytest.raises(ValueError, match="together"):
            simulate_batch(instances, get_algorithm(ALGORITHM),
                           max_time=MAX_TIME, stall_agent="A")
