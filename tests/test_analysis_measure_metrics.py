"""Tests for the vectorized measure estimates and the result metrics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.measure import (
    ParameterBox,
    classify_array,
    dimension_summary,
    estimate_boundary_thickness,
    estimate_class_fractions,
    feasible_fraction,
    projection_distance_array,
)
from repro.analysis.metrics import (
    group_results,
    meeting_time_stats,
    success_rate,
    summarize_grouped,
    summarize_results,
)
from repro.core.canonical import projection_distance
from repro.core.classification import InstanceClass, classify
from repro.core.instance import Instance
from repro.sim.results import SimulationResult, TerminationReason


class TestVectorizedClassifier:
    def test_projection_distance_array_matches_scalar(self):
        rng = np.random.default_rng(0)
        xs = rng.uniform(-5, 5, 50)
        ys = rng.uniform(-5, 5, 50)
        phis = rng.uniform(0, 2 * math.pi, 50)
        vectorized = projection_distance_array(xs, ys, phis)
        for k in range(50):
            scalar = projection_distance(Instance(r=0.5, x=xs[k], y=ys[k], phi=phis[k]))
            assert vectorized[k] == pytest.approx(scalar, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(0.2, 1.0),
        st.floats(-5.0, 5.0),
        st.floats(-5.0, 5.0),
        st.floats(0.0, 2.0 * math.pi - 1e-9),
        st.sampled_from([0.5, 1.0, 2.0]),
        st.sampled_from([0.5, 1.0, 2.0]),
        st.floats(0.0, 5.0),
        st.sampled_from([1, -1]),
    )
    def test_agrees_with_scalar_classifier(self, r, x, y, phi, tau, v, t, chi):
        params = {
            "x": np.array([x]),
            "y": np.array([y]),
            "phi": np.array([phi]),
            "tau": np.array([tau]),
            "v": np.array([v]),
            "t": np.array([t]),
            "r": np.array([r]),
            "chi": np.array([chi]),
        }
        vectorized = classify_array(params)[0]
        scalar = classify(Instance(r=r, x=x, y=y, phi=phi, tau=tau, v=v, t=t, chi=chi))
        assert vectorized is scalar


class TestMeasureEstimates:
    def test_fractions_sum_to_one(self):
        fractions = estimate_class_fractions(20_000, seed=1)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_general_position_has_no_exceptions_and_no_infeasible(self):
        fractions = estimate_class_fractions(50_000, seed=2)
        assert fractions[InstanceClass.S1_BOUNDARY.value] == 0.0
        assert fractions[InstanceClass.S2_BOUNDARY.value] == 0.0
        # With tau and v drawn continuously the synchronous subspace is never
        # hit, so clause 1 makes everything feasible.
        assert fractions[InstanceClass.INFEASIBLE.value] == 0.0
        assert feasible_fraction(50_000, seed=2) == pytest.approx(1.0)

    def test_synchronous_slice_shows_infeasible_region(self):
        box = ParameterBox(synchronous_fraction=1.0)
        fractions = estimate_class_fractions(50_000, box, seed=3)
        assert fractions[InstanceClass.INFEASIBLE.value] > 0.05
        assert fractions[InstanceClass.TYPE_1.value] > 0.05
        assert fractions[InstanceClass.TYPE_4.value] > 0.05

    def test_boundary_thickness_decays_linearly(self):
        thickness = estimate_boundary_thickness(80_000, (0.2, 0.1, 0.05), seed=4)
        assert thickness[0.2] > thickness[0.1] > thickness[0.05] > 0.0
        ratio = thickness[0.1] / thickness[0.2]
        assert 0.3 < ratio < 0.7  # halving eps halves the hit fraction

    def test_dimension_summary(self):
        summary = dimension_summary()
        assert summary["ambient_dimension"] == 7
        assert summary["s1_codimension"] == 4
        assert summary["s2_codimension"] == 3

    def test_parameter_box_forced_synchronous(self):
        box = ParameterBox(synchronous_fraction=1.0)
        params = box.sample(100, np.random.default_rng(0))
        assert np.all(params["tau"] == 1.0)
        assert np.all(params["v"] == 1.0)


def make_result(met, meeting_time=None, min_distance=1.0, segments=10, wall=0.01):
    instance = Instance(r=0.5, x=2.0, y=0.0)
    return SimulationResult(
        instance=instance,
        algorithm_name="alg",
        met=met,
        termination=TerminationReason.RENDEZVOUS if met else TerminationReason.MAX_TIME,
        meeting_time=meeting_time,
        min_distance=min_distance,
        segments_a=segments,
        segments_b=segments,
        elapsed_wall_seconds=wall,
    )


class TestMetrics:
    def test_success_rate(self):
        results = [make_result(True, 1.0), make_result(False), make_result(True, 3.0)]
        assert success_rate(results) == pytest.approx(2.0 / 3.0)
        assert math.isnan(success_rate([]))

    def test_meeting_time_stats(self):
        results = [make_result(True, 1.0), make_result(True, 3.0), make_result(False)]
        stats = meeting_time_stats(results)
        assert stats["mean"] == 2.0
        assert stats["median"] == 2.0
        assert stats["max"] == 3.0
        assert meeting_time_stats([make_result(False)]) == {"mean": None, "median": None, "max": None}

    def test_summarize_results(self):
        results = [make_result(True, 2.0, 0.2), make_result(False, None, 0.9)]
        summary = summarize_results(results, label="demo")
        assert summary.count == 2
        assert summary.successes == 1
        assert summary.success_rate == 0.5
        assert summary.meeting_time_mean == 2.0
        assert summary.min_distance_mean == pytest.approx(0.55)
        assert summary.segments_mean == 20.0
        assert summary.label == "demo"
        row = summary.as_row()
        assert row["label"] == "demo" and row["successes"] == 1

    def test_summarize_empty(self):
        summary = summarize_results([])
        assert summary.count == 0
        assert math.isnan(summary.success_rate)

    def test_group_results_and_grouped_summaries(self):
        results = [make_result(True, 1.0), make_result(False), make_result(True, 2.0)]
        grouped = group_results(results, key=lambda r: r.met)
        assert set(grouped) == {True, False}
        summaries = summarize_grouped(results, key=lambda r: r.met)
        assert {s.label for s in summaries} == {"True", "False"}
