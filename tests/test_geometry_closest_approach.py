"""Tests for the closest-approach / first-hit kernel (the heart of the simulator)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.closest_approach import (
    closest_approach_moving_points,
    first_time_within,
    first_time_within_segment_pair,
    min_distance_over_window,
)

coords = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)
speeds = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)
velocities = st.tuples(speeds, speeds)


def brute_force_min_distance(pos_a, vel_a, pos_b, vel_b, duration, samples=2001):
    """Dense sampling reference for the analytic kernel."""
    ts = np.linspace(0.0, duration, samples)
    ax = pos_a[0] + ts * vel_a[0]
    ay = pos_a[1] + ts * vel_a[1]
    bx = pos_b[0] + ts * vel_b[0]
    by = pos_b[1] + ts * vel_b[1]
    return float(np.min(np.hypot(ax - bx, ay - by)))


class TestClosestApproach:
    def test_static_points(self):
        res = closest_approach_moving_points((0.0, 0.0), (0.0, 0.0), (3.0, 4.0), (0.0, 0.0), 10.0)
        assert res.min_distance == 5.0
        assert res.time_offset == 0.0

    def test_head_on_pass(self):
        # B moves straight through A's position.
        res = closest_approach_moving_points((0.0, 0.0), (0.0, 0.0), (-5.0, 0.0), (1.0, 0.0), 10.0)
        assert res.min_distance == pytest.approx(0.0)
        assert res.time_offset == pytest.approx(5.0)

    def test_minimum_clamped_to_window(self):
        # Closest approach would be at t=5 but the window ends at t=2.
        res = closest_approach_moving_points((0.0, 0.0), (0.0, 0.0), (-5.0, 1.0), (1.0, 0.0), 2.0)
        assert res.time_offset == 2.0
        assert res.min_distance == pytest.approx(math.hypot(3.0, 1.0))

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            closest_approach_moving_points((0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (0.0, 0.0), -1.0)

    @settings(max_examples=200)
    @given(points, velocities, points, velocities, st.floats(0.0, 20.0))
    def test_matches_brute_force(self, pos_a, vel_a, pos_b, vel_b, duration):
        analytic = closest_approach_moving_points(pos_a, vel_a, pos_b, vel_b, duration)
        sampled = brute_force_min_distance(pos_a, vel_a, pos_b, vel_b, duration)
        # Sampling can only overestimate the true minimum, and by at most one
        # grid step of relative motion.
        relative_speed = math.hypot(vel_b[0] - vel_a[0], vel_b[1] - vel_a[1])
        grid_error = relative_speed * duration / 2000.0 + 1e-6
        assert analytic.min_distance <= sampled + 1e-6
        assert sampled <= analytic.min_distance + grid_error

    @given(points, velocities, points, velocities, st.floats(0.0, 20.0))
    def test_min_distance_over_window_wrapper(self, pos_a, vel_a, pos_b, vel_b, duration):
        assert min_distance_over_window(pos_a, vel_a, pos_b, vel_b, duration) == pytest.approx(
            closest_approach_moving_points(pos_a, vel_a, pos_b, vel_b, duration).min_distance
        )


class TestFirstTimeWithin:
    def test_already_within(self):
        assert first_time_within((0.0, 0.0), (0.0, 0.0), (0.5, 0.0), (0.0, 0.0), 1.0, 5.0) == 0.0

    def test_never_within(self):
        assert (
            first_time_within((0.0, 0.0), (0.0, 0.0), (10.0, 0.0), (0.0, 1.0), 1.0, 100.0) is None
        )

    def test_receding_points_never_hit(self):
        assert (
            first_time_within((0.0, 0.0), (0.0, 0.0), (2.0, 0.0), (1.0, 0.0), 1.0, 100.0) is None
        )

    def test_exact_crossing_time(self):
        # B approaches A along the x-axis at speed 1 from distance 10; radius 1
        # is first reached at t = 9.
        hit = first_time_within((0.0, 0.0), (0.0, 0.0), (10.0, 0.0), (-1.0, 0.0), 1.0, 100.0)
        assert hit == pytest.approx(9.0)

    def test_hit_outside_window_returns_none(self):
        assert first_time_within((0.0, 0.0), (0.0, 0.0), (10.0, 0.0), (-1.0, 0.0), 1.0, 5.0) is None

    def test_tangential_graze_detected(self):
        # B passes at distance exactly 1 (the radius) above A.
        hit = first_time_within((0.0, 0.0), (0.0, 0.0), (-5.0, 1.0), (1.0, 0.0), 1.0, 20.0)
        assert hit == pytest.approx(5.0, abs=1e-6)

    def test_zero_radius(self):
        hit = first_time_within((0.0, 0.0), (0.0, 0.0), (-5.0, 0.0), (1.0, 0.0), 0.0, 20.0)
        assert hit == pytest.approx(5.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            first_time_within((0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (0.0, 0.0), -1.0, 1.0)
        with pytest.raises(ValueError):
            first_time_within((0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (0.0, 0.0), 1.0, -1.0)

    @settings(max_examples=200)
    @given(points, velocities, points, velocities, st.floats(0.01, 5.0), st.floats(0.0, 20.0))
    def test_hit_time_is_consistent(self, pos_a, vel_a, pos_b, vel_b, radius, duration):
        hit = first_time_within(pos_a, vel_a, pos_b, vel_b, radius, duration)
        if hit is None:
            # The distance must stay above the radius over the whole window
            # (up to the sampling error of the brute-force check).
            sampled = brute_force_min_distance(pos_a, vel_a, pos_b, vel_b, duration)
            assert sampled >= radius - 1e-6
        else:
            assert 0.0 <= hit <= duration
            ax = pos_a[0] + hit * vel_a[0]
            ay = pos_a[1] + hit * vel_a[1]
            bx = pos_b[0] + hit * vel_b[0]
            by = pos_b[1] + hit * vel_b[1]
            assert math.hypot(ax - bx, ay - by) <= radius + 1e-6
            # Minimality: no earlier sample is inside the radius (strictly).
            if hit > 1e-9:
                ts = np.linspace(0.0, hit * (1.0 - 1e-9), 500)
                dists = np.hypot(
                    (pos_a[0] + ts * vel_a[0]) - (pos_b[0] + ts * vel_b[0]),
                    (pos_a[1] + ts * vel_a[1]) - (pos_b[1] + ts * vel_b[1]),
                )
                assert np.all(dists >= radius - 1e-6)


class TestSegmentPair:
    def test_zero_duration_snapshot(self):
        assert (
            first_time_within_segment_pair((0.0, 0.0), (0.0, 0.0), (0.5, 0.0), (0.5, 0.0), 1.0, 0.0)
            == 0.0
        )
        assert (
            first_time_within_segment_pair((0.0, 0.0), (0.0, 0.0), (5.0, 0.0), (5.0, 0.0), 1.0, 0.0)
            is None
        )

    def test_crossing_segments(self):
        hit = first_time_within_segment_pair(
            (0.0, 0.0), (10.0, 0.0), (10.0, 0.0), (0.0, 0.0), 2.0, 10.0
        )
        assert hit == pytest.approx(4.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            first_time_within_segment_pair((0.0, 0.0), (1.0, 0.0), (0.0, 0.0), (1.0, 0.0), 1.0, -1.0)
