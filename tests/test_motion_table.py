"""Tests for the bulk (columnar) mode of the motion compiler.

The contract under test: a :class:`TrajectoryTable` is exactly the
materialization of the lazy :func:`compile_trajectory` stream — same segment
boundaries, same positions, same velocities — plus a synthetic trailing
stationary row for finite programs.
"""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from profiles import SLOW_SETTINGS, STANDARD_SETTINGS
from repro.algorithms.cow_walk import planar_cow_walk
from repro.core.instance import Instance
from repro.motion.compiler import (
    LocalProgramBuilder,
    compile_table,
    compile_trajectory,
    compile_trajectory_table,
    local_program_table,
)
from repro.motion.instructions import Move, Wait

# Subnormal components carry only a handful of mantissa bits, so the tight
# tolerances below are not meaningful for them (and such moves are physically
# meaningless anyway); keep the strategies to normal floats.
_coord = st.floats(-4.0, 4.0, allow_nan=False, allow_infinity=False, allow_subnormal=False)

instructions = st.lists(
    st.one_of(
        st.builds(
            Wait,
            st.floats(0.0, 8.0, allow_nan=False, allow_infinity=False, allow_subnormal=False),
        ),
        st.builds(Move, _coord, _coord),
    ),
    max_size=30,
)

instance_specs = st.builds(
    Instance,
    r=st.just(0.5),
    x=st.floats(-3.0, 3.0),
    y=st.floats(-3.0, 3.0),
    phi=st.floats(0.0, 6.28),
    tau=st.floats(0.25, 4.0),
    v=st.floats(0.25, 4.0),
    t=st.floats(0.0, 3.0),
    chi=st.sampled_from([-1, 1]),
)


class TestLocalProgramBuilder:
    def test_empty_program(self):
        table = local_program_table([])
        assert len(table) == 0 and table.complete
        assert table.total_duration == 0.0

    def test_null_instructions_dropped(self):
        table = local_program_table([Wait(0.0), Move(0.0, 0.0), Wait(1.0), Move(3.0, 4.0)])
        assert len(table) == 2
        assert table.duration[0] == 1.0
        assert table.duration[1] == 5.0  # move length

    def test_budgeted_snapshot_covers_requested_time(self):
        program = [Wait(1.0)] * 20
        builder = LocalProgramBuilder(program)
        snap = builder.snapshot(4.5)
        assert snap.total_duration >= 4.5
        assert not snap.complete
        full = builder.snapshot(1e9)
        assert full.complete and len(full) == 20

    def test_snapshot_views_are_stable_across_growth(self):
        def stream():
            k = 0.0
            while True:
                k += 1.0
                yield Wait(k)

        builder = LocalProgramBuilder(stream())
        early = builder.snapshot(1.0)
        early_durations = early.duration.copy()
        builder.ensure_time(1e7)
        assert np.array_equal(early.duration, early_durations)

    def test_max_steps_bound(self):
        builder = LocalProgramBuilder(Wait(1.0) for _ in range(10**6))
        snap = builder.snapshot(1e18, max_steps=100)
        assert len(snap) == 100 and not snap.complete


class TestCompileTableParity:
    @SLOW_SETTINGS
    @given(instance_specs, instructions)
    def test_matches_lazy_compiler(self, instance, program):
        spec = instance.agent_b()
        lazy = list(compile_trajectory(spec, iter(program)))
        table = compile_table(spec, local_program_table(program))

        # Lazy segments map 1:1 onto table rows (both drop null instructions
        # and both prepend a sleep segment when the agent wakes late).
        assert table.segments == len(lazy)
        for k, segment in enumerate(lazy):
            assert table.start_time[k] == pytest.approx(segment.start_time, rel=1e-12, abs=1e-12)
            assert table.duration[k] == pytest.approx(segment.duration, rel=1e-12, abs=1e-12)
            assert table.start_x[k] == pytest.approx(segment.start_pos[0], rel=1e-12, abs=1e-12)
            assert table.start_y[k] == pytest.approx(segment.start_pos[1], rel=1e-12, abs=1e-12)
            assert table.vel_x[k] == pytest.approx(segment.velocity[0], rel=1e-12, abs=1e-9)
            assert table.vel_y[k] == pytest.approx(segment.velocity[1], rel=1e-12, abs=1e-9)

        # Finite program: one trailing infinite stationary row at the final
        # position, so the table covers all of time.
        assert table.exhausted
        assert len(table) == len(lazy) + 1
        assert math.isinf(table.duration[-1])
        assert table.vel_x[-1] == 0.0 and table.vel_y[-1] == 0.0
        if lazy:
            end = lazy[-1]
            assert table.finish_time == pytest.approx(
                end.start_time + end.duration, rel=1e-12, abs=1e-12
            )

    @STANDARD_SETTINGS
    @given(instance_specs, st.floats(0.1, 50.0))
    def test_states_at_matches_segment_states(self, instance, when):
        spec = instance.agent_b()
        table = compile_table(spec, local_program_table(planar_cow_walk(1)))
        times = np.array([0.0, when, table.boundaries()[0] if len(table) > 1 else when])
        xs, ys, vxs, vys = table.states_at(times)
        for time, x, y in zip(times, xs, ys):
            segment = None
            for k in range(len(table)):
                start = table.start_time[k]
                end = start + table.duration[k]
                if start <= time and (time < end or math.isinf(end)):
                    segment = k
            assert segment is not None
            offset = time - table.start_time[segment]
            assert x == pytest.approx(
                table.start_x[segment] + offset * table.vel_x[segment], abs=1e-9
            )
            assert y == pytest.approx(
                table.start_y[segment] + offset * table.vel_y[segment], abs=1e-9
            )


class TestCompileTrajectoryTable:
    def test_horizon_coverage(self):
        instance = Instance(r=0.5, x=1.0, y=0.0, t=2.0, tau=2.0)
        spec = instance.agent_b()
        table = compile_trajectory_table(spec, planar_cow_walk(2), horizon=50.0)
        assert table.end_time >= 50.0

    def test_invalid_horizon(self):
        spec = Instance(r=0.5, x=1.0, y=0.0).agent_b()
        with pytest.raises(ValueError):
            compile_trajectory_table(spec, planar_cow_walk(1), horizon=0.0)
        with pytest.raises(ValueError):
            compile_trajectory_table(spec, planar_cow_walk(1), horizon=math.inf)

    def test_max_segments_truncates(self):
        spec = Instance(r=0.5, x=1.0, y=0.0).agent_b()
        table = compile_trajectory_table(
            spec, planar_cow_walk(3), horizon=1e9, max_segments=10
        )
        assert not table.exhausted
        assert table.segments == 10
