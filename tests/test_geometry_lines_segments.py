"""Tests for lines, segments and polylines."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.lines import Line
from repro.geometry.polyline import Polyline
from repro.geometry.segments import Segment

coords = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)


class TestLine:
    def test_direction_normalized(self):
        line = Line((0.0, 0.0), (3.0, 4.0))
        assert math.hypot(*line.direction) == pytest.approx(1.0)

    def test_zero_direction_rejected(self):
        with pytest.raises(ValueError):
            Line((0.0, 0.0), (0.0, 0.0))

    def test_through_two_points(self):
        line = Line.through((1.0, 1.0), (3.0, 1.0))
        assert line.inclination() == pytest.approx(0.0)

    def test_projection_on_horizontal_line(self):
        line = Line.from_point_and_angle((0.0, 2.0), 0.0)
        assert line.project((5.0, 7.0)) == pytest.approx((5.0, 2.0))

    def test_distance_and_signed_offset(self):
        line = Line.from_point_and_angle((0.0, 0.0), 0.0)
        assert line.distance_to((3.0, -2.0)) == pytest.approx(2.0)
        assert line.signed_offset((3.0, 2.0)) == pytest.approx(2.0)
        assert line.signed_offset((3.0, -2.0)) == pytest.approx(-2.0)

    def test_coordinate_along_and_point_at(self):
        line = Line.from_point_and_angle((1.0, 1.0), 0.0)
        assert line.coordinate_along((4.0, 5.0)) == pytest.approx(3.0)
        assert line.point_at(3.0) == pytest.approx((4.0, 1.0))

    def test_contains(self):
        line = Line.from_point_and_angle((0.0, 1.0), 0.0)
        assert line.contains((10.0, 1.0))
        assert not line.contains((10.0, 1.1))

    def test_parallel_and_same_line(self):
        a = Line.from_point_and_angle((0.0, 0.0), 0.3)
        b = Line.from_point_and_angle((1.0, 1.0), 0.3 + math.pi)
        assert a.is_parallel_to(b)
        assert not a.same_line_as(b)
        c = Line.from_point_and_angle(a.point_at(2.0), 0.3)
        assert a.same_line_as(c)

    def test_angle_with(self):
        a = Line.from_point_and_angle((0.0, 0.0), 0.0)
        b = Line.from_point_and_angle((0.0, 0.0), math.pi / 3)
        assert a.angle_with(b) == pytest.approx(math.pi / 3)

    def test_reflect(self):
        line = Line.from_point_and_angle((0.0, 0.0), 0.0)
        assert line.reflect((2.0, 3.0)) == pytest.approx((2.0, -3.0))

    def test_translate(self):
        line = Line.from_point_and_angle((0.0, 0.0), 0.0).translate((0.0, 5.0))
        assert line.distance_to((0.0, 0.0)) == pytest.approx(5.0)

    @given(points, st.floats(0.0, math.pi - 1e-6))
    def test_projection_is_idempotent_and_closest(self, point, inclination):
        line = Line.from_point_and_angle((0.5, -0.25), inclination)
        projection = line.project(point)
        assert line.project(projection) == pytest.approx(projection, abs=1e-6)
        assert line.distance_to(point) == pytest.approx(
            math.hypot(point[0] - projection[0], point[1] - projection[1]), abs=1e-6
        )


class TestSegment:
    def test_length_and_direction(self):
        seg = Segment((0.0, 0.0), (3.0, 4.0))
        assert seg.length() == 5.0
        assert seg.direction() == pytest.approx((0.6, 0.8))

    def test_degenerate(self):
        seg = Segment((1.0, 1.0), (1.0, 1.0))
        assert seg.is_degenerate()
        with pytest.raises(ZeroDivisionError):
            seg.direction()

    def test_point_at_and_midpoint(self):
        seg = Segment((0.0, 0.0), (2.0, 2.0))
        assert seg.point_at(0.25) == (0.5, 0.5)
        assert seg.midpoint() == (1.0, 1.0)

    def test_reversed_and_translate(self):
        seg = Segment((0.0, 0.0), (1.0, 0.0))
        assert seg.reversed().start == (1.0, 0.0)
        assert seg.translate((0.0, 2.0)).end == (1.0, 2.0)

    def test_distance_to_point_regions(self):
        seg = Segment((0.0, 0.0), (10.0, 0.0))
        assert seg.distance_to_point((5.0, 3.0)) == pytest.approx(3.0)
        assert seg.distance_to_point((-4.0, 3.0)) == pytest.approx(5.0)
        assert seg.distance_to_point((13.0, 4.0)) == pytest.approx(5.0)

    def test_closest_point(self):
        seg = Segment((0.0, 0.0), (10.0, 0.0))
        assert seg.closest_point_to((5.0, 3.0)) == pytest.approx((5.0, 0.0))
        assert seg.closest_point_to((-5.0, 3.0)) == pytest.approx((0.0, 0.0))

    def test_parallel_and_max_distance_to_line(self):
        line = Line.from_point_and_angle((0.0, 0.0), 0.0)
        seg = Segment((0.0, 1.0), (5.0, 3.0))
        assert not seg.is_parallel_to_line(line)
        assert seg.max_distance_to_line(line) == pytest.approx(3.0)

    def test_sample(self):
        seg = Segment((0.0, 0.0), (1.0, 0.0))
        assert len(seg.sample(5)) == 5
        with pytest.raises(ValueError):
            seg.sample(1)

    def test_time_parametrized(self):
        position = Segment((0.0, 0.0), (4.0, 0.0)).time_parametrized(2.0)
        assert position(1.0) == pytest.approx((2.0, 0.0))
        assert position(100.0) == pytest.approx((4.0, 0.0))
        with pytest.raises(ValueError):
            Segment((0.0, 0.0), (1.0, 0.0)).time_parametrized(0.0)


class TestPolyline:
    def test_requires_vertices(self):
        with pytest.raises(ValueError):
            Polyline([])

    def test_length_and_closure(self):
        square = Polyline([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)])
        assert square.length() == pytest.approx(4.0)
        assert square.is_closed()

    def test_segments_count(self):
        poly = Polyline([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)])
        assert len(poly.segments()) == 2

    def test_reversed(self):
        poly = Polyline([(0.0, 0.0), (1.0, 0.0)])
        assert poly.reversed().start == (1.0, 0.0)

    def test_translate(self):
        poly = Polyline([(0.0, 0.0), (1.0, 0.0)]).translate((0.0, 1.0))
        assert poly.vertices == ((0.0, 1.0), (1.0, 1.0))

    def test_concatenate_contiguous(self):
        a = Polyline([(0.0, 0.0), (1.0, 0.0)])
        b = Polyline([(1.0, 0.0), (1.0, 1.0)])
        assert a.concatenate(b).end == (1.0, 1.0)
        with pytest.raises(ValueError):
            a.concatenate(Polyline([(5.0, 5.0), (6.0, 6.0)]))

    def test_simplified_drops_duplicates(self):
        poly = Polyline([(0.0, 0.0), (0.0, 0.0), (1.0, 0.0), (1.0, 0.0)])
        assert len(poly.simplified()) == 2

    def test_point_at_arclength(self):
        poly = Polyline([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)])
        assert poly.point_at_arclength(0.0) == (0.0, 0.0)
        assert poly.point_at_arclength(1.5) == pytest.approx((1.0, 0.5))
        assert poly.point_at_arclength(10.0) == (1.0, 1.0)

    def test_distance_to_point(self):
        poly = Polyline([(0.0, 0.0), (2.0, 0.0)])
        assert poly.distance_to_point((1.0, 1.0)) == pytest.approx(1.0)

    def test_bounding_box(self):
        poly = Polyline([(0.0, 1.0), (2.0, -1.0)])
        assert poly.bounding_box() == ((0.0, -1.0), (2.0, 1.0))

    def test_array_roundtrip(self):
        poly = Polyline([(0.0, 0.0), (1.0, 2.0)])
        again = Polyline.from_array(poly.as_array())
        assert again.vertices == poly.vertices
        with pytest.raises(ValueError):
            Polyline.from_array(np.zeros((3, 3)))

    def test_resample_shape(self):
        poly = Polyline([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)])
        resampled = poly.resample(9)
        assert resampled.shape == (9, 2)
        with pytest.raises(ValueError):
            poly.resample(1)

    def test_resample_degenerate(self):
        point = Polyline([(1.0, 1.0)])
        assert point.resample(4).shape == (4, 2)

    @given(st.lists(points, min_size=2, max_size=12))
    def test_reverse_preserves_length(self, vertices):
        poly = Polyline(vertices)
        assert poly.reversed().length() == pytest.approx(poly.length(), rel=1e-9, abs=1e-9)
