"""Unit tests for the observability machinery: registry, modes, spans, sinks.

The phase numbers in manifests and traces only mean something if the
machinery underneath is airtight: mode resolution mirrors the other
``REPRO_*`` knobs (with ``REPRO_TRACE_FILE`` implying ``on``), off mode
really is one shared null span, collectors accumulate exactly what closed
inside them, trace segments merge into a nesting-valid timeline, and the
Prometheus renderer stays a pure function of the metrics payload.
"""

import json
import threading
import time

import pytest

from repro.obs import core, phases, prom, trace
from repro.obs.core import _override_mode, resolve_mode


@pytest.fixture
def obs_on():
    """Force mode on and give the test a clean registry/counter slate."""
    with _override_mode("on"):
        core.reset_counters()
        yield
    core.reset_counters()


@pytest.fixture
def scratch_trace(tmp_path, monkeypatch, obs_on):
    """Point the trace sink at a throwaway path with a fresh buffer."""
    path = str(tmp_path / "trace.json")
    monkeypatch.setattr(trace, "_PATH", path)
    monkeypatch.setattr(trace, "_EVENTS", [])
    monkeypatch.setattr(trace, "_MERGED", False)
    monkeypatch.setattr(trace, "_FLUSH_REGISTERED", True)  # no atexit litter
    return path


class TestModeResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(core.MODE_ENV, "off")
        assert resolve_mode("on") == "on"

    def test_environment_is_consulted_next(self, monkeypatch):
        monkeypatch.setenv(core.MODE_ENV, "on")
        assert resolve_mode() == "on"

    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(core.MODE_ENV, raising=False)
        monkeypatch.delenv(trace.TRACE_ENV, raising=False)
        assert resolve_mode() == "off"

    def test_trace_file_implies_on(self, monkeypatch):
        monkeypatch.delenv(core.MODE_ENV, raising=False)
        monkeypatch.setenv(trace.TRACE_ENV, "/tmp/whatever.json")
        assert resolve_mode() == "on"

    def test_blank_environment_means_default(self, monkeypatch):
        monkeypatch.setenv(core.MODE_ENV, "   ")
        monkeypatch.delenv(trace.TRACE_ENV, raising=False)
        assert resolve_mode() == "off"

    def test_unknown_mode_raises(self, monkeypatch):
        monkeypatch.setenv(core.MODE_ENV, "loud")
        with pytest.raises(ValueError, match="loud"):
            resolve_mode()
        with pytest.raises(ValueError):
            resolve_mode("verbose")


class TestOffMode:
    @pytest.fixture(autouse=True)
    def force_off(self):
        """Pin off mode so the class holds even on a REPRO_OBS=on CI leg."""
        with _override_mode("off"):
            yield

    def test_span_returns_the_shared_null_span(self):
        first = core.span("engine.compile")
        second = core.span("campaign.shard", shard="s-0001")
        assert first is second is core._NULL_SPAN

    def test_add_and_record_are_noops(self):
        before = core.get("ipc.bytes").count
        core.add("ipc.bytes", 4096)
        core.record("engine.compile", 1.0)
        assert core.get("ipc.bytes").count == before

    def test_collect_yields_none(self):
        with core.collect() as bucket:
            assert bucket is None


class TestRegistry:
    def test_redeclaration_is_idempotent(self):
        again = core.declare_span("engine.compile", phases.ENGINE_COMPILE.doc)
        assert again is phases.ENGINE_COMPILE

    def test_conflicting_redeclaration_raises(self):
        with pytest.raises(ValueError, match="already declared"):
            core.declare_counter("engine.compile", phases.ENGINE_COMPILE.doc)
        with pytest.raises(ValueError, match="already declared"):
            core.declare_span("engine.compile", "a different meaning")

    def test_unknown_instrument_raises(self, obs_on):
        with pytest.raises(KeyError):
            core.span("engine.nonexistent").__enter__()

    def test_wall_phases_are_registered_spans(self):
        for phase_id in phases.WALL_PHASES + phases.IPC_PHASES:
            assert core.get(phase_id).kind == "span"
        assert core.get(phases.IPC_BYTES_KEY).kind == "counter"

    def test_instrument_rows_shape(self):
        rows = core.instrument_rows()
        assert [row["id"] for row in rows] == sorted(row["id"] for row in rows)
        assert {"id", "kind", "count", "total"} <= set(rows[0])


class TestOnMode:
    def test_span_times_and_accumulates(self, obs_on):
        with core.span("engine.compile"):
            time.sleep(0.002)
        instrument = core.get("engine.compile")
        assert instrument.count == 1
        assert instrument.total >= 0.002

    def test_collect_receives_closed_spans(self, obs_on):
        with core.collect() as bucket:
            with core.span("engine.compile"):
                pass
            with core.span("engine.compile"):
                pass
            with core.span("campaign.collate"):
                pass
        assert set(bucket) == {"engine.compile", "campaign.collate"}
        assert bucket["engine.compile"] == pytest.approx(
            core.get("engine.compile").total
        )

    def test_collectors_nest_innermost_wins(self, obs_on):
        with core.collect() as outer:
            with core.span("campaign.sample"):
                pass
            with core.collect() as inner:
                with core.span("engine.compile"):
                    pass
        assert "engine.compile" in inner
        assert "engine.compile" not in outer
        assert "campaign.sample" in outer

    def test_collectors_are_thread_local(self, obs_on):
        seen = {}

        def worker():
            with core.collect() as bucket:
                with core.span("engine.assemble"):
                    pass
                seen["worker"] = dict(bucket)

        with core.collect() as main_bucket:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert "engine.assemble" in seen["worker"]
        assert main_bucket == {}

    def test_record_feeds_collector_like_a_span(self, obs_on):
        with core.collect() as bucket:
            core.record("ipc.serialize", 0.25)
        assert bucket == {"ipc.serialize": 0.25}
        assert core.get("ipc.serialize").total == 0.25

    def test_counters_do_not_deposit_into_collectors(self, obs_on):
        with core.collect() as bucket:
            core.add("ipc.bytes", 1024)
            core.add("ipc.bytes", 1024)
        assert bucket == {}
        assert core.get("ipc.bytes").count == 2
        assert core.get("ipc.bytes").total == 2048.0

    def test_override_restores_previous_mode(self):
        previous = core.mode()
        with _override_mode("off"):
            assert not core.enabled()
            with _override_mode("on"):
                assert core.enabled()
            assert not core.enabled()
        assert core.mode() == previous


class TestTraceSink:
    def test_emit_flush_merge_validate(self, scratch_trace):
        with core.span("engine.compile", backend="numpy"):
            pass
        with core.span("campaign.shard", shard="s-0001"):
            with core.span("campaign.sample"):
                pass
        segment = trace.flush()
        assert segment and segment.startswith(scratch_trace + ".seg-")
        merged = trace.merge()
        assert merged == scratch_trace
        assert not any(
            event.get("name") is None
            for event in json.load(open(merged))["traceEvents"]
        )
        assert trace.validate(scratch_trace) == 3
        # consumed segments are deleted; flush after merge is a no-op
        assert trace.flush() is None

    def test_span_tags_land_in_args(self, scratch_trace):
        with core.span("engine.kernel_solve", backend="numpy", threads=2):
            pass
        trace.flush()
        trace.merge()
        (event,) = json.load(open(scratch_trace))["traceEvents"]
        assert event["args"] == {"backend": "numpy", "threads": 2}

    def test_merge_collects_worker_segments(self, scratch_trace, tmp_path):
        foreign = [{
            "name": "engine.compile", "ph": "X", "ts": 1.0, "dur": 5.0,
            "pid": 99999, "tid": 1,
        }]
        with open(scratch_trace + ".seg-99999.json", "w") as handle:
            json.dump(foreign, handle)
        with core.span("campaign.store_write"):
            pass
        trace.merge()
        events = json.load(open(scratch_trace))["traceEvents"]
        assert {event["pid"] for event in events} >= {99999}
        assert len(events) == 2

    def test_validate_rejects_interleaved_spans(self, tmp_path):
        path = tmp_path / "bad.json"
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 10_000.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5_000.0, "dur": 10_000.0, "pid": 1, "tid": 1},
        ]
        path.write_text(json.dumps({"traceEvents": events}))
        with pytest.raises(ValueError, match="interleave"):
            trace.validate(str(path))

    def test_validate_rejects_empty_and_malformed(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError, match="no traceEvents"):
            trace.validate(str(empty))
        torn = tmp_path / "torn.json"
        torn.write_text(json.dumps({"traceEvents": [{"name": "a", "ph": "X"}]}))
        with pytest.raises(ValueError, match="missing"):
            trace.validate(str(torn))

    def test_inactive_process_emits_nothing(self, obs_on):
        assert not trace.active()
        assert trace.flush() is None
        assert trace.merge() is None


class TestPrometheusRenderer:
    METRICS = {
        "ready": True,
        "queue": {
            "depth": 3, "depth_limit": 16, "jobs_total": 7,
            "jobs_by_state": {"queued": 2, "running": 1, "completed": 4},
            "attempts_total": 9, "torn_lines": 0, "invalid_records": 0,
        },
        "scheduler": {"inflight": 1, "jobs_completed": 4, "jobs_quarantined": 0},
        "shards": {
            "shard_attempts": 40, "shards_executed": 38, "shards_retried": 2,
            "shards_quarantined": 0, "rows_computed": 9728,
            "wall_seconds": 12.5, "shards_per_second": 3.04,
        },
        "shards_session": {
            "shard_attempts": 10, "shards_executed": 10, "shards_retried": 0,
            "shards_quarantined": 0, "rows_computed": 2560,
            "wall_seconds": 3.2, "shards_per_second": 3.125,
        },
    }

    def test_exposition_has_typed_required_families(self):
        text = prom.render_prometheus(self.METRICS)
        for family, kind in [
            ("repro_service_ready", "gauge"),
            ("repro_queue_depth", "gauge"),
            ("repro_jobs", "gauge"),
            ("repro_shards_lifetime_shards_executed_total", "counter"),
            ("repro_shards_session_shards_executed_total", "counter"),
            ("repro_shards_session_shards_per_second", "gauge"),
        ]:
            assert f"# TYPE {family} {kind}" in text
        assert 'repro_jobs{state="queued"} 2' in text
        assert text.endswith("\n")

    def test_every_sample_line_is_well_formed(self):
        for line in prom.render_prometheus(self.METRICS).strip().splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
            else:
                name, value = line.rsplit(" ", 1)
                float(value)
                assert name[0].isalpha()

    def test_missing_sections_are_omitted_not_fatal(self):
        text = prom.render_prometheus({"ready": False})
        assert "repro_service_ready 0" in text
        assert "repro_shards" not in text
        assert prom.render_prometheus({}) == "\n"
