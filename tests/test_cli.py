"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_classify_arguments(self):
        args = build_parser().parse_args(
            ["classify", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707", "--chi", "1"]
        )
        assert args.command == "classify"
        assert args.r == 0.5


class TestClassifyCommand:
    def test_type4(self, capsys):
        code = main(["classify", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963"])
        out = capsys.readouterr().out
        assert code == 0
        assert "type-4" in out
        assert "feasible          : True" in out
        assert "phase bound" in out

    def test_infeasible(self, capsys):
        code = main(["classify", "--r", "0.5", "--x", "3", "--y", "0", "--t", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "infeasible" in out
        assert "covered by AURV   : False" in out

    def test_invalid_instance_reports_error(self, capsys):
        code = main(["classify", "--r", "-1", "--x", "3", "--y", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSimulateCommand:
    def test_dedicated_simulation(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--algorithm", "dedicated"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rendezvous at" in out

    def test_render_flag(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "2", "--y", "1", "--chi", "-1", "--t", "2",
             "--algorithm", "line-search", "--render"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "+--" in out  # the ASCII canvas border

    def test_miss_exit_code(self, capsys):
        argv = ["simulate", "--r", "0.5", "--x", "3", "--y", "0", "--t", "0.5",
                "--algorithm", "stay-put", "--max-time", "10"]
        assert main(argv) == 1
        assert main(argv + ["--allow-miss"]) == 0

    def test_asymmetric_radii(self, capsys):
        code = main(
            ["simulate", "--r", "0.6", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--t", "0.5", "--radius-a", "0.6", "--radius-b", "0.2",
             "--algorithm", "almost-universal"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "froze at" in out
        assert "rendezvous at" in out

    def test_vectorized_with_kernel_threads(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--algorithm", "dedicated", "--timebase", "float",
             "--engine", "vectorized", "--kernel-threads", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rendezvous at" in out

    def test_invalid_kernel_threads_rejected(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1",
             "--algorithm", "stay-put", "--kernel-threads", "0", "--allow-miss"]
        )
        assert code == 2
        assert "kernel_threads" in capsys.readouterr().err


class TestOtherCommands:
    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "almost-universal" in out and "lemma-3.9" in out

    def test_experiment_figures_no_save(self, capsys):
        assert main(["experiment", "figures", "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "figure5-lemma39-cases" in out
        assert "[saved]" not in out

    def test_experiment_saves_results(self, tmp_path, capsys):
        code = main(["experiment", "thm41", "--samples", "2", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[saved]" in out
        assert any(path.suffix == ".csv" for path in tmp_path.iterdir())


class TestCampaignCommands:
    def _run_args(self, directory, extra=()):
        return [
            "campaign", "run", "--campaign-dir", str(directory),
            "--name", "cli-smoke", "--algorithm", "almost-universal-compact",
            "--classes", "type-1", "--instances-per-cell", "4",
            "--shard-size", "2", "--seed", "5",
            "--max-time", "1e6", "--max-segments", "30000",
            *extra,
        ]

    def test_run_interrupt_resume_report_check(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        # Interrupted run exits 3 and says how to resume.
        code = main(self._run_args(directory, ["--max-shards", "1"]))
        out = capsys.readouterr().out
        assert code == 3
        assert "campaign resume" in out

        # Status and report of the partial campaign also exit 3.
        assert main(["campaign", "status", "--campaign-dir", str(directory)]) == 3
        assert "1/2" in capsys.readouterr().out
        assert main(["campaign", "report", "--campaign-dir", str(directory)]) == 3
        assert "incomplete" in capsys.readouterr().out

        # Resume completes from the stored spec and skips the finished shard.
        code = main(["campaign", "resume", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 already complete" in out

        # Report renders the aggregate and --check verifies the store.
        code = main(["campaign", "report", "--campaign-dir", str(directory), "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "type-1" in out
        assert "[check] OK" in out

    def test_report_check_fails_on_corruption(self, tmp_path, capsys):
        from repro.campaign import CampaignStore

        directory = tmp_path / "camp"
        assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        store = CampaignStore(str(directory))
        record = store.manifest_records()[0]
        with open(store.shard_path(record["shard_id"]), "r+b") as handle:
            handle.write(b"corrupt!")
        code = main(["campaign", "report", "--campaign-dir", str(directory), "--check"])
        assert code == 1
        assert "checksum" in capsys.readouterr().err

    def test_run_spec_file(self, tmp_path, capsys):
        from repro.campaign import CampaignArm, CampaignSpec

        spec = CampaignSpec(
            name="from-file",
            arms=(CampaignArm(algorithm="almost-universal-compact"),),
            classes=("type-1",),
            instances_per_cell=2,
            seed=1,
            simulator={"max_time": 1e6, "max_segments": 30_000},
            shard_size=2,
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        code = main([
            "campaign", "run", "--spec", str(spec_path),
            "--campaign-dir", str(tmp_path / "camp"),
        ])
        assert code == 0
        assert "from-file" in capsys.readouterr().out

    def test_run_without_spec_or_algorithm_errors(self, tmp_path, capsys):
        code = main(["campaign", "run", "--campaign-dir", str(tmp_path / "camp")])
        assert code == 2
        assert "--spec" in capsys.readouterr().err

    def test_unknown_class_errors_cleanly(self, tmp_path, capsys):
        code = main([
            "campaign", "run", "--campaign-dir", str(tmp_path / "camp"),
            "--algorithm", "almost-universal-compact", "--classes", "type-9",
        ])
        assert code == 2
        assert "unknown instance class" in capsys.readouterr().err

    def test_experiment_campaign_dir_routes_and_resumes(self, tmp_path, capsys):
        args = [
            "experiment", "section5", "--samples", "2",
            "--campaign-dir", str(tmp_path), "--no-save",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Campaign mode" in out
        assert (tmp_path / "section5" / "manifest.jsonl").exists()
        # Second run resumes from the store: identical table, no recompute.
        assert main(args) == 0
        assert "Campaign mode" in capsys.readouterr().out

    def test_experiment_campaign_dir_rejected_for_unsupported(self, tmp_path, capsys):
        code = main([
            "experiment", "thm41", "--samples", "2",
            "--campaign-dir", str(tmp_path), "--no-save",
        ])
        assert code == 2
        assert "--campaign-dir" in capsys.readouterr().err

    def test_spec_file_conflicts_with_inline_flags(self, tmp_path, capsys):
        from repro.campaign import CampaignArm, CampaignSpec

        spec = CampaignSpec(
            name="from-file",
            arms=(CampaignArm(algorithm="almost-universal-compact"),),
            classes=("type-1",),
            instances_per_cell=2,
            simulator={"max_time": 1e6, "max_segments": 30_000},
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        code = main([
            "campaign", "run", "--spec", str(spec_path),
            "--campaign-dir", str(tmp_path / "camp"), "--seed", "99",
        ])
        assert code == 2
        assert "--seed" in capsys.readouterr().err


class TestCampaignDoctorAndFaultFlags:
    def _run_args(self, directory, extra=()):
        return [
            "campaign", "run", "--campaign-dir", str(directory),
            "--name", "cli-doctor", "--algorithm", "almost-universal-compact",
            "--classes", "type-1", "--instances-per-cell", "4",
            "--shard-size", "2", "--seed", "5",
            "--max-time", "1e6", "--max-segments", "30000",
            *extra,
        ]

    def test_execution_flags_parse_with_defaults(self):
        args = build_parser().parse_args(self._run_args("d"))
        assert args.workers == 1
        assert args.shard_timeout is None
        assert args.max_attempts == 3
        assert args.lease_timeout == 60.0
        args = build_parser().parse_args(self._run_args(
            "d", ["--workers", "4", "--shard-timeout", "30",
                  "--max-attempts", "5", "--lease-timeout", "120"]
        ))
        assert args.workers == 4
        assert args.shard_timeout == 30.0
        assert args.max_attempts == 5
        assert args.lease_timeout == 120.0

    def test_run_with_worker_pool_completes(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        code = main(self._run_args(directory, ["--workers", "2"]))
        out = capsys.readouterr().out
        assert code == 0
        assert "workers: 2" in out
        assert main(["campaign", "report", "--campaign-dir", str(directory), "--check"]) == 0

    def test_invalid_workers_reports_clean_error(self, tmp_path, capsys):
        code = main(self._run_args(tmp_path / "camp", ["--workers", "0"]))
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_doctor_on_healthy_complete_store(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        code = main(["campaign", "doctor", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[doctor] OK: store is clean and complete" in out

    def test_doctor_on_partial_store_exits_3(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        assert main(self._run_args(directory, ["--max-shards", "1"])) == 3
        capsys.readouterr()
        code = main(["campaign", "doctor", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 3
        assert "OK but incomplete" in out
        assert "campaign resume" in out

    def test_doctor_repair_recovers_a_corrupt_store(self, tmp_path, capsys):
        from repro.campaign import CampaignStore

        directory = tmp_path / "camp"
        assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        store = CampaignStore(str(directory))
        record = store.manifest_records()[0]
        with open(store.shard_path(record["shard_id"]), "r+b") as handle:
            handle.write(b"corrupt!")

        # Detection: exit 1, the broken shard named.
        code = main(["campaign", "doctor", "--campaign-dir", str(directory)])
        captured = capsys.readouterr()
        assert code == 1
        assert f"[doctor] corrupt: {record['shard_id']}" in captured.out
        assert "FAIL" in captured.err

        # Repair: the corrupt file is deleted, leaving a clean-but-incomplete
        # store (exit 3); resume recomputes exactly that shard; check passes.
        code = main(["campaign", "doctor", "--campaign-dir", str(directory), "--repair"])
        out = capsys.readouterr().out
        assert code == 3
        assert f"repaired: deleted shard {record['shard_id']}" in out
        code = main(["campaign", "resume", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 already complete" in out
        assert main(["campaign", "report", "--campaign-dir", str(directory), "--check"]) == 0

    def test_quarantined_store_resume_exits_3_with_guidance(self, tmp_path, capsys):
        from repro.campaign import CampaignStore, plan_shards

        directory = tmp_path / "camp"
        assert main(self._run_args(directory, ["--max-shards", "1"])) == 3
        capsys.readouterr()
        store = CampaignStore(str(directory))
        plan = plan_shards(store.load_spec())
        pending = [shard for shard in plan if shard.shard_id not in store.completed()]
        store.quarantine(pending[0], error="poison", attempts=3)

        code = main(["campaign", "resume", "--campaign-dir", str(directory)])
        captured = capsys.readouterr()
        assert code == 3
        assert "degraded: 1 shard(s) quarantined" in captured.err
        assert "doctor" in captured.err

        # Doctor names the quarantined shard; --repair clears it; resume
        # finishes the campaign cleanly.
        code = main(["campaign", "doctor", "--campaign-dir", str(directory), "--repair"])
        out = capsys.readouterr().out
        assert code == 3
        assert f"cleared quarantine {pending[0].shard_id}" in out
        assert main(["campaign", "resume", "--campaign-dir", str(directory)]) == 0
