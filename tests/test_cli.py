"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_classify_arguments(self):
        args = build_parser().parse_args(
            ["classify", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707", "--chi", "1"]
        )
        assert args.command == "classify"
        assert args.r == 0.5


class TestClassifyCommand:
    def test_type4(self, capsys):
        code = main(["classify", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963"])
        out = capsys.readouterr().out
        assert code == 0
        assert "type-4" in out
        assert "feasible          : True" in out
        assert "phase bound" in out

    def test_infeasible(self, capsys):
        code = main(["classify", "--r", "0.5", "--x", "3", "--y", "0", "--t", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "infeasible" in out
        assert "covered by AURV   : False" in out

    def test_invalid_instance_reports_error(self, capsys):
        code = main(["classify", "--r", "-1", "--x", "3", "--y", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSimulateCommand:
    def test_dedicated_simulation(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--algorithm", "dedicated"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rendezvous at" in out

    def test_render_flag(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "2", "--y", "1", "--chi", "-1", "--t", "2",
             "--algorithm", "line-search", "--render"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "+--" in out  # the ASCII canvas border

    def test_miss_exit_code(self, capsys):
        argv = ["simulate", "--r", "0.5", "--x", "3", "--y", "0", "--t", "0.5",
                "--algorithm", "stay-put", "--max-time", "10"]
        assert main(argv) == 1
        assert main(argv + ["--allow-miss"]) == 0

    def test_asymmetric_radii(self, capsys):
        code = main(
            ["simulate", "--r", "0.6", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--t", "0.5", "--radius-a", "0.6", "--radius-b", "0.2",
             "--algorithm", "almost-universal"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "froze at" in out
        assert "rendezvous at" in out

    def test_vectorized_with_kernel_threads(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--algorithm", "dedicated", "--timebase", "float",
             "--engine", "vectorized", "--kernel-threads", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rendezvous at" in out

    def test_invalid_kernel_threads_rejected(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1",
             "--algorithm", "stay-put", "--kernel-threads", "0", "--allow-miss"]
        )
        assert code == 2
        assert "kernel_threads" in capsys.readouterr().err


class TestOtherCommands:
    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "almost-universal" in out and "lemma-3.9" in out

    def test_experiment_figures_no_save(self, capsys):
        assert main(["experiment", "figures", "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "figure5-lemma39-cases" in out
        assert "[saved]" not in out

    def test_experiment_saves_results(self, tmp_path, capsys):
        code = main(["experiment", "thm41", "--samples", "2", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[saved]" in out
        assert any(path.suffix == ".csv" for path in tmp_path.iterdir())
