"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_classify_arguments(self):
        args = build_parser().parse_args(
            ["classify", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707", "--chi", "1"]
        )
        assert args.command == "classify"
        assert args.r == 0.5


class TestClassifyCommand:
    def test_type4(self, capsys):
        code = main(["classify", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963"])
        out = capsys.readouterr().out
        assert code == 0
        assert "type-4" in out
        assert "feasible          : True" in out
        assert "phase bound" in out

    def test_infeasible(self, capsys):
        code = main(["classify", "--r", "0.5", "--x", "3", "--y", "0", "--t", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "infeasible" in out
        assert "covered by AURV   : False" in out

    def test_invalid_instance_reports_error(self, capsys):
        code = main(["classify", "--r", "-1", "--x", "3", "--y", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSimulateCommand:
    def test_dedicated_simulation(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--algorithm", "dedicated"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rendezvous at" in out

    def test_render_flag(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "2", "--y", "1", "--chi", "-1", "--t", "2",
             "--algorithm", "line-search", "--render"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "+--" in out  # the ASCII canvas border

    def test_miss_exit_code(self, capsys):
        argv = ["simulate", "--r", "0.5", "--x", "3", "--y", "0", "--t", "0.5",
                "--algorithm", "stay-put", "--max-time", "10"]
        assert main(argv) == 1
        assert main(argv + ["--allow-miss"]) == 0

    def test_asymmetric_radii(self, capsys):
        code = main(
            ["simulate", "--r", "0.6", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--t", "0.5", "--radius-a", "0.6", "--radius-b", "0.2",
             "--algorithm", "almost-universal"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "froze at" in out
        assert "rendezvous at" in out

    def test_vectorized_with_kernel_threads(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1", "--phi", "1.5707963",
             "--algorithm", "dedicated", "--timebase", "float",
             "--engine", "vectorized", "--kernel-threads", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rendezvous at" in out

    def test_invalid_kernel_threads_rejected(self, capsys):
        code = main(
            ["simulate", "--r", "0.5", "--x", "1", "--y", "1",
             "--algorithm", "stay-put", "--kernel-threads", "0", "--allow-miss"]
        )
        assert code == 2
        assert "kernel_threads" in capsys.readouterr().err


class TestOtherCommands:
    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "almost-universal" in out and "lemma-3.9" in out

    def test_experiment_figures_no_save(self, capsys):
        assert main(["experiment", "figures", "--no-save"]) == 0
        out = capsys.readouterr().out
        assert "figure5-lemma39-cases" in out
        assert "[saved]" not in out

    def test_experiment_saves_results(self, tmp_path, capsys):
        code = main(["experiment", "thm41", "--samples", "2", "--results-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[saved]" in out
        assert any(path.suffix == ".csv" for path in tmp_path.iterdir())


class TestCampaignCommands:
    def _run_args(self, directory, extra=()):
        return [
            "campaign", "run", "--campaign-dir", str(directory),
            "--name", "cli-smoke", "--algorithm", "almost-universal-compact",
            "--classes", "type-1", "--instances-per-cell", "4",
            "--shard-size", "2", "--seed", "5",
            "--max-time", "1e6", "--max-segments", "30000",
            *extra,
        ]

    def test_run_interrupt_resume_report_check(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        # Interrupted run exits 3 and says how to resume.
        code = main(self._run_args(directory, ["--max-shards", "1"]))
        out = capsys.readouterr().out
        assert code == 3
        assert "campaign resume" in out

        # Status and report of the partial campaign also exit 3.
        assert main(["campaign", "status", "--campaign-dir", str(directory)]) == 3
        assert "1/2" in capsys.readouterr().out
        assert main(["campaign", "report", "--campaign-dir", str(directory)]) == 3
        assert "incomplete" in capsys.readouterr().out

        # Resume completes from the stored spec and skips the finished shard.
        code = main(["campaign", "resume", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 already complete" in out

        # Report renders the aggregate and --check verifies the store.
        code = main(["campaign", "report", "--campaign-dir", str(directory), "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "type-1" in out
        assert "[check] OK" in out

    def test_report_check_fails_on_corruption(self, tmp_path, capsys):
        from repro.campaign import CampaignStore

        directory = tmp_path / "camp"
        assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        store = CampaignStore(str(directory))
        record = store.manifest_records()[0]
        with open(store.shard_path(record["shard_id"]), "r+b") as handle:
            handle.write(b"corrupt!")
        code = main(["campaign", "report", "--campaign-dir", str(directory), "--check"])
        assert code == 1
        assert "checksum" in capsys.readouterr().err

    def test_run_spec_file(self, tmp_path, capsys):
        from repro.campaign import CampaignArm, CampaignSpec

        spec = CampaignSpec(
            name="from-file",
            arms=(CampaignArm(algorithm="almost-universal-compact"),),
            classes=("type-1",),
            instances_per_cell=2,
            seed=1,
            simulator={"max_time": 1e6, "max_segments": 30_000},
            shard_size=2,
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        code = main([
            "campaign", "run", "--spec", str(spec_path),
            "--campaign-dir", str(tmp_path / "camp"),
        ])
        assert code == 0
        assert "from-file" in capsys.readouterr().out

    def test_run_without_spec_or_algorithm_errors(self, tmp_path, capsys):
        code = main(["campaign", "run", "--campaign-dir", str(tmp_path / "camp")])
        assert code == 2
        assert "--spec" in capsys.readouterr().err

    def test_unknown_class_errors_cleanly(self, tmp_path, capsys):
        code = main([
            "campaign", "run", "--campaign-dir", str(tmp_path / "camp"),
            "--algorithm", "almost-universal-compact", "--classes", "type-9",
        ])
        assert code == 2
        assert "unknown instance class" in capsys.readouterr().err

    def test_experiment_campaign_dir_routes_and_resumes(self, tmp_path, capsys):
        args = [
            "experiment", "section5", "--samples", "2",
            "--campaign-dir", str(tmp_path), "--no-save",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Campaign mode" in out
        assert (tmp_path / "section5" / "manifest.jsonl").exists()
        # Second run resumes from the store: identical table, no recompute.
        assert main(args) == 0
        assert "Campaign mode" in capsys.readouterr().out

    def test_experiment_campaign_dir_rejected_for_unsupported(self, tmp_path, capsys):
        code = main([
            "experiment", "thm41", "--samples", "2",
            "--campaign-dir", str(tmp_path), "--no-save",
        ])
        assert code == 2
        assert "--campaign-dir" in capsys.readouterr().err

    def test_spec_file_conflicts_with_inline_flags(self, tmp_path, capsys):
        from repro.campaign import CampaignArm, CampaignSpec

        spec = CampaignSpec(
            name="from-file",
            arms=(CampaignArm(algorithm="almost-universal-compact"),),
            classes=("type-1",),
            instances_per_cell=2,
            simulator={"max_time": 1e6, "max_segments": 30_000},
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        code = main([
            "campaign", "run", "--spec", str(spec_path),
            "--campaign-dir", str(tmp_path / "camp"), "--seed", "99",
        ])
        assert code == 2
        assert "--seed" in capsys.readouterr().err


class TestCampaignDoctorAndFaultFlags:
    def _run_args(self, directory, extra=()):
        return [
            "campaign", "run", "--campaign-dir", str(directory),
            "--name", "cli-doctor", "--algorithm", "almost-universal-compact",
            "--classes", "type-1", "--instances-per-cell", "4",
            "--shard-size", "2", "--seed", "5",
            "--max-time", "1e6", "--max-segments", "30000",
            *extra,
        ]

    def test_execution_flags_parse_with_defaults(self):
        args = build_parser().parse_args(self._run_args("d"))
        assert args.workers == 1
        assert args.shard_timeout is None
        assert args.max_attempts == 3
        assert args.lease_timeout == 60.0
        args = build_parser().parse_args(self._run_args(
            "d", ["--workers", "4", "--shard-timeout", "30",
                  "--max-attempts", "5", "--lease-timeout", "120"]
        ))
        assert args.workers == 4
        assert args.shard_timeout == 30.0
        assert args.max_attempts == 5
        assert args.lease_timeout == 120.0

    def test_run_with_worker_pool_completes(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        code = main(self._run_args(directory, ["--workers", "2"]))
        out = capsys.readouterr().out
        assert code == 0
        assert "workers: 2" in out
        assert main(["campaign", "report", "--campaign-dir", str(directory), "--check"]) == 0

    def test_invalid_workers_reports_clean_error(self, tmp_path, capsys):
        code = main(self._run_args(tmp_path / "camp", ["--workers", "0"]))
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_doctor_on_healthy_complete_store(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        code = main(["campaign", "doctor", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[doctor] OK: store is clean and complete" in out

    def test_doctor_on_partial_store_exits_3(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        assert main(self._run_args(directory, ["--max-shards", "1"])) == 3
        capsys.readouterr()
        code = main(["campaign", "doctor", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 3
        assert "OK but incomplete" in out
        assert "campaign resume" in out

    def test_doctor_repair_recovers_a_corrupt_store(self, tmp_path, capsys):
        from repro.campaign import CampaignStore

        directory = tmp_path / "camp"
        assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        store = CampaignStore(str(directory))
        record = store.manifest_records()[0]
        with open(store.shard_path(record["shard_id"]), "r+b") as handle:
            handle.write(b"corrupt!")

        # Detection: exit 1, the broken shard named.
        code = main(["campaign", "doctor", "--campaign-dir", str(directory)])
        captured = capsys.readouterr()
        assert code == 1
        assert f"[doctor] corrupt: {record['shard_id']}" in captured.out
        assert "FAIL" in captured.err

        # Repair: the corrupt file is deleted, leaving a clean-but-incomplete
        # store (exit 3); resume recomputes exactly that shard; check passes.
        code = main(["campaign", "doctor", "--campaign-dir", str(directory), "--repair"])
        out = capsys.readouterr().out
        assert code == 3
        assert f"repaired: deleted shard {record['shard_id']}" in out
        code = main(["campaign", "resume", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 already complete" in out
        assert main(["campaign", "report", "--campaign-dir", str(directory), "--check"]) == 0

    def test_quarantined_store_resume_exits_3_with_guidance(self, tmp_path, capsys):
        from repro.campaign import CampaignStore, plan_shards

        directory = tmp_path / "camp"
        assert main(self._run_args(directory, ["--max-shards", "1"])) == 3
        capsys.readouterr()
        store = CampaignStore(str(directory))
        plan = plan_shards(store.load_spec())
        pending = [shard for shard in plan if shard.shard_id not in store.completed()]
        store.quarantine(pending[0], error="poison", attempts=3)

        code = main(["campaign", "resume", "--campaign-dir", str(directory)])
        captured = capsys.readouterr()
        assert code == 3
        assert "degraded: 1 shard(s) quarantined" in captured.err
        assert "doctor" in captured.err

        # Doctor names the quarantined shard; --repair clears it; resume
        # finishes the campaign cleanly.
        code = main(["campaign", "doctor", "--campaign-dir", str(directory), "--repair"])
        out = capsys.readouterr().out
        assert code == 3
        assert f"cleared quarantine {pending[0].shard_id}" in out
        assert main(["campaign", "resume", "--campaign-dir", str(directory)]) == 0


class TestServiceCommands:
    """`repro serve` / `repro submit`, and the CLI-wide exit-code contract.

    The contract (module docstring of :mod:`repro.cli`): 0 success, 2 usage,
    3 ran-but-incomplete (backpressure, draining, partial campaigns),
    1 integrity failure.  Each class is pinned by at least one test here or
    in :class:`TestCampaignCommands` / :class:`TestCampaignDoctorAndFaultFlags`.
    """

    def _submit_args(self, target, extra=()):
        return [
            "submit", *target,
            "--name", "svc-smoke", "--algorithm", "almost-universal-compact",
            "--classes", "type-1", "--instances-per-cell", "4",
            "--shard-size", "2", "--seed", "5",
            "--max-time", "1e6", "--max-segments", "30000",
            *extra,
        ]

    def test_submit_direct_accepts_then_dedups_exit_0(self, tmp_path, capsys):
        target = ["--service-dir", str(tmp_path)]
        assert main(self._submit_args(target)) == 0
        assert "accepted" in capsys.readouterr().out
        assert main(self._submit_args(target)) == 0
        assert "deduplicated" in capsys.readouterr().out

    def test_submit_without_spec_is_usage_error_2(self, tmp_path, capsys):
        code = main(["submit", "--service-dir", str(tmp_path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_unreachable_daemon_is_usage_error_2(self, tmp_path, capsys):
        code = main(self._submit_args(["--url", "http://127.0.0.1:1"]))
        assert code == 2
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_submit_backpressure_exits_3(self, capsys, tmp_path):
        import threading

        from repro.campaign import CampaignArm, CampaignSpec
        from repro.service import ServiceDaemon, make_server

        daemon = ServiceDaemon(tmp_path, depth_limit=1)
        # Ready but never scheduling: occupy the single queue slot directly.
        daemon.recover()
        daemon.queue.record_daemon_start()
        daemon._server = make_server(daemon, "127.0.0.1", 0)
        thread = threading.Thread(target=daemon._server.serve_forever, daemon=True)
        thread.start()
        daemon._ready.set()
        try:
            daemon.queue.submit(
                CampaignSpec(
                    name="occupier",
                    arms=(CampaignArm(algorithm="almost-universal-compact"),),
                    classes=("type-1",),
                    instances_per_cell=2,
                    seed=999,
                    simulator={"max_time": 1e5, "max_segments": 20_000},
                    shard_size=2,
                )
            )
            url = f"http://127.0.0.1:{daemon._server.server_address[1]}"
            code = main(self._submit_args(["--url", url]))
            captured = capsys.readouterr()
            assert code == 3
            assert "refused (429)" in captured.err
        finally:
            daemon._server.shutdown()
            daemon._server.server_close()

    def test_serve_drains_cleanly_on_sigterm_exit_0(self, tmp_path):
        import json
        import os
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--service-dir", str(tmp_path)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            daemon_file = tmp_path / "daemon.json"
            deadline = time.monotonic() + 60
            while not daemon_file.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert daemon_file.exists(), process.stderr.read() if process.poll() else "slow start"
            info = json.loads(daemon_file.read_text())
            with urllib.request.urlopen(
                f"http://{info['host']}:{info['port']}/readyz", timeout=10
            ) as response:
                assert response.status == 200
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, stderr
        # The drain journaled a clean shutdown and removed daemon.json.
        assert not daemon_file.exists()
        assert '"message": "service daemon stopped cleanly"' in stderr

    def test_status_surfaces_lease_state(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        assert main([
            "campaign", "run", "--campaign-dir", str(directory),
            "--algorithm", "almost-universal-compact", "--classes", "type-1",
            "--instances-per-cell", "4", "--shard-size", "2", "--seed", "5",
        ]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--campaign-dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "leases            : 0 active, 0 stale" in out
        assert "quarantined" not in out  # nothing quarantined, line suppressed


class TestCampaignJsonViews:
    """--json on status/report: machine-readable payloads, same exit codes."""

    def _run_args(self, directory, extra=()):
        return [
            "campaign", "run", "--campaign-dir", str(directory),
            "--name", "cli-json", "--algorithm", "almost-universal-compact",
            "--classes", "type-1", "--instances-per-cell", "4",
            "--shard-size", "2", "--seed", "5",
            "--max-time", "1e6", "--max-segments", "30000",
            *extra,
        ]

    def test_status_json_complete_and_partial(self, tmp_path, capsys):
        import json

        directory = tmp_path / "camp"
        assert main(self._run_args(directory, ["--max-shards", "1"])) == 3
        capsys.readouterr()
        code = main([
            "campaign", "status", "--campaign-dir", str(directory), "--json",
        ])
        partial = json.loads(capsys.readouterr().out)
        assert code == 3
        assert partial["shards_complete"] == 1
        assert partial["shards_complete"] < partial["shards_total"]
        assert main(["campaign", "resume", "--campaign-dir", str(directory)]) == 0
        capsys.readouterr()
        code = main([
            "campaign", "status", "--campaign-dir", str(directory), "--json",
        ])
        complete = json.loads(capsys.readouterr().out)
        assert code == 0
        assert complete["shards_complete"] == complete["shards_total"]

    def test_report_json_check_payload(self, tmp_path, capsys):
        import json

        directory = tmp_path / "camp"
        assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        code = main([
            "campaign", "report", "--campaign-dir", str(directory),
            "--check", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["complete"] is True
        assert payload["checked"] is True
        assert payload["name"] == "cli-json"


class TestObservabilityCommands:
    """`campaign profile` and `obs list`: the consumption side of the spans."""

    def _run_args(self, directory, extra=()):
        return [
            "campaign", "run", "--campaign-dir", str(directory),
            "--name", "cli-obs", "--algorithm", "almost-universal-compact",
            "--classes", "type-1", "--instances-per-cell", "4",
            "--shard-size", "2", "--seed", "5",
            "--max-time", "1e6", "--max-segments", "30000",
            *extra,
        ]

    def test_profile_without_phases_exits_incomplete(self, tmp_path, capsys):
        from repro.obs.core import _override_mode

        directory = tmp_path / "camp"
        with _override_mode("off"):
            assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        code = main(["campaign", "profile", "--campaign-dir", str(directory)])
        assert code == 3
        assert "REPRO_OBS" in capsys.readouterr().err

    def test_profile_reports_phase_table_and_attribution(self, tmp_path, capsys):
        import json

        from repro.obs.core import _override_mode

        directory = tmp_path / "camp"
        with _override_mode("on"):
            assert main(self._run_args(directory)) == 0
        capsys.readouterr()
        code = main(["campaign", "profile", "--campaign-dir", str(directory)])
        out = capsys.readouterr().out
        assert code == 0
        assert "engine.kernel_solve" in out
        assert "% of wall time" in out
        code = main([
            "campaign", "profile", "--campaign-dir", str(directory), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["shards_profiled"] == payload["shards_total"] > 0
        (arm,) = payload["arms"].values()
        assert arm["attribution"] > 0.5
        assert "engine.kernel_solve" in arm["phases"]

    def test_obs_list_prints_the_vocabulary(self, capsys):
        assert main(["obs", "list"]) == 0
        out = capsys.readouterr().out
        assert "engine.kernel_solve" in out
        assert "ipc.bytes" in out
        assert "REPRO_OBS" in out
