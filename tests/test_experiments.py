"""Tests for the experiment drivers and the report machinery (small parameters)."""

import json
import os

import pytest

from repro.experiments.ablation import run_schedule_ablation, run_timebase_ablation
from repro.experiments.figures import (
    all_figures,
    figure1_canonical_line,
    figure2_coordinate_systems,
    figure3_claim31_geometry,
    figure4_endgame_cases,
    figure5_lemma39_cases,
)
from repro.experiments.measure_experiment import run_measure_experiment
from repro.experiments.report import ExperimentResult, format_table, results_directory, write_csv, write_json
from repro.experiments.scaling import run_scaling_experiment
from repro.experiments.theorem31 import infeasibility_lower_bound, run_characterization_experiment
from repro.experiments.theorem32 import run_universal_coverage_experiment
from repro.experiments.theorem41 import run_exception_boundary_experiment
from repro.core.instance import Instance


class TestReport:
    def test_format_table_alignment_and_missing_values(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2.5, "c": None}]
        table = format_table(rows)
        assert "a" in table and "b" in table and "c" in table
        assert "-" in table  # missing/None rendered as a dash

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_write_csv_and_json(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3, "c": 4}]
        csv_path = write_csv(rows, str(tmp_path / "out.csv"))
        assert os.path.exists(csv_path)
        with open(csv_path) as handle:
            header = handle.readline().strip().split(",")
        assert header == ["a", "b", "c"]
        json_path = write_json({"x": [1, 2, 3]}, str(tmp_path / "out.json"))
        with open(json_path) as handle:
            assert json.load(handle) == {"x": [1, 2, 3]}

    def test_experiment_result_render_and_save(self, tmp_path):
        result = ExperimentResult(name="demo exp", rows=[{"k": 1}], notes=["a note"])
        rendered = result.render()
        assert "demo exp" in rendered and "a note" in rendered
        paths = result.save(str(tmp_path))
        assert os.path.exists(paths["csv"]) and os.path.exists(paths["json"])

    def test_results_directory_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "custom"))
        directory = results_directory()
        assert directory.endswith("custom") and os.path.isdir(directory)


class TestFigures:
    def test_figure1(self):
        result = figure1_canonical_line()
        row = result.rows[0]
        assert row["proj_distance"] > 0.0
        assert row["offset_A"] == pytest.approx(-row["offset_B"])
        assert "canonical_line_L" in result.extra["series"]

    def test_figure2_alpha_below_step(self):
        result = figure2_coordinate_systems(phase=2, epoch=1)
        assert result.rows[0]["rotation_step"] == pytest.approx(0.7853981633974483)
        assert "rot_x_axis" in result.extra["series"]

    def test_figure3_bound_holds(self):
        result = figure3_claim31_geometry()
        assert result.rows[0]["bound_holds"]

    def test_figure4_both_cases_meet(self):
        result = figure4_endgame_cases()
        assert len(result.rows) == 2
        assert all(row["met"] for row in result.rows)
        assert set(result.extra["series"]) == {"case_a_crossing", "case_b_grazing"}

    def test_figure5_meets_at_exactly_r(self):
        result = figure5_lemma39_cases()
        assert all(row["met"] for row in result.rows)
        assert all(row["meets_at_exactly_r"] for row in result.rows)

    def test_all_figures(self):
        figures = all_figures()
        assert len(figures) == 5
        assert len({fig.name for fig in figures}) == 5


class TestTheoremExperiments:
    def test_characterization_small(self):
        result = run_characterization_experiment(
            samples_per_class=2, infeasible_samples=2, seed=3, max_segments=150_000
        )
        by_label = {row["label"]: row for row in result.rows}
        for label in ("trivial", "type-1", "type-2", "type-3", "type-4", "S1-boundary", "S2-boundary"):
            assert by_label[label]["success_rate"] == 1.0, label
        assert by_label["infeasible"]["success_rate"] == 0.0
        assert by_label["infeasible"]["lower_bound_respected"] is True

    def test_infeasibility_lower_bound_helper(self):
        inst = Instance(r=0.5, x=3.0, y=0.0, t=0.5)
        assert infeasibility_lower_bound(inst) == pytest.approx(2.5)
        inst2 = Instance(r=0.5, x=3.0, y=0.0, t=0.5, chi=-1)
        assert infeasibility_lower_bound(inst2) == pytest.approx(2.5)

    def test_universal_coverage_small(self):
        result = run_universal_coverage_experiment(
            samples_per_type=2, seed=4, max_segments=400_000
        )
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["success_rate"] == 1.0, row["label"]

    def test_exception_boundary_small(self):
        result = run_exception_boundary_experiment(samples_per_set=2, seed=5, max_segments=150_000)
        by_set = {row["set"]: row for row in result.rows}
        for name in ("S1", "S2"):
            assert by_set[name]["dedicated_success"] == 2
            assert by_set[name]["dedicated_meets_at_exactly_r"] == 2
            assert by_set[name]["universal_success_after_perturbation"] == 2

    def test_universal_coverage_campaign_mode(self, tmp_path):
        """campaign_dir routes the sweep through the orchestrator and resumes."""
        directory = str(tmp_path / "thm32")
        kwargs = dict(
            samples_per_type=2, seed=4, max_segments=400_000,
            timebase="float", max_time=1e9,
        )
        result = run_universal_coverage_experiment(campaign_dir=directory, **kwargs)
        assert len(result.rows) == 4
        for row in result.rows:
            assert row["success_rate"] == 1.0, row["label"]
        assert any("Campaign mode" in note for note in result.notes)
        # Re-running aggregates the stored columns without recomputing.
        from repro.campaign import CampaignStore

        manifest_before = CampaignStore(directory).manifest_records()
        again = run_universal_coverage_experiment(campaign_dir=directory, **kwargs)
        assert again.rows == result.rows
        assert CampaignStore(directory).manifest_records() == manifest_before

    def test_universal_coverage_campaign_mode_rejects_custom_schedule(self, tmp_path):
        from repro.algorithms.schedules import CompactSchedule

        with pytest.raises(ValueError, match="registry name"):
            run_universal_coverage_experiment(
                samples_per_type=2, schedule=CompactSchedule(),
                campaign_dir=str(tmp_path / "thm32"),
            )

    def test_campaign_mode_rejects_silently_unhonorable_event_engine(self, tmp_path):
        # Float-timebase shards route to the vectorized engine inside a
        # campaign; an explicit event-engine request must fail loudly, never
        # silently hand back vectorized results.
        from repro.experiments.section5 import run_asymmetric_radius_experiment

        with pytest.raises(ValueError, match="vectorized engine"):
            run_asymmetric_radius_experiment(
                samples_per_type=2, engine="event",
                campaign_dir=str(tmp_path / "s5"),
            )
        with pytest.raises(ValueError, match="vectorized engine"):
            run_universal_coverage_experiment(
                samples_per_type=2, engine="event", timebase="float",
                max_time=1e9, campaign_dir=str(tmp_path / "thm32"),
            )


class TestScalingAndAblation:
    def test_scaling_small(self):
        result = run_scaling_experiment(
            delays=(0.5,), distances=(1.0,), radii=(0.8,), max_segments=300_000
        )
        assert len(result.rows) == 3
        for row in result.rows:
            if "dedicated_met" in row:
                assert row["dedicated_met"]
            assert row.get("universal_met", True)

    def test_timebase_ablation_small(self):
        result = run_timebase_ablation(
            instances=[Instance(r=0.5, x=1.0, y=0.0, tau=0.5, v=1.0, t=0.0)],
            max_segments=200_000,
        )
        # One shallow row plus the deep wait-and-sweep row.
        assert len(result.rows) == 2
        shallow, deep = result.rows
        assert shallow["exact_met"] and shallow["float_met"]
        assert deep["exact_met"]

    def test_schedule_ablation_small(self):
        result = run_schedule_ablation(
            instances=[Instance(r=0.6, x=1.0, y=0.0, t=1.5)], max_segments=200_000
        )
        row = result.rows[0]
        assert row["paper_met"] and row["compact_met"]


class TestMeasureExperiment:
    def test_measure_experiment_small(self):
        result = run_measure_experiment(samples=20_000, seed=1)
        assert any(row["class"] == "infeasible" for row in result.rows)
        assert "boundary_thickness" in result.extra
        assert result.extra["dimension_summary"]["ambient_dimension"] == 7
        assert any("feasible fraction" in note for note in result.notes)
