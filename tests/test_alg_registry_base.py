"""Tests for the algorithm registry and the base protocol classes."""

import pytest

from repro.algorithms.base import Algorithm, FunctionAlgorithm, UniversalAlgorithm
from repro.algorithms.registry import available_algorithms, get_algorithm, register_algorithm
from repro.core.instance import Instance
from repro.motion.instructions import Move
from repro.sim.engine import simulate


class TestRegistry:
    def test_builtins_present(self):
        names = available_algorithms()
        for expected in (
            "almost-universal",
            "almost-universal-compact",
            "cgkk",
            "latecomers",
            "dedicated",
            "stay-put",
            "linear-probe",
            "wait-and-sweep",
            "aligned-delay-walk",
            "line-search",
            "lemma-3.9",
        ):
            assert expected in names

    def test_get_algorithm_instantiates(self):
        algorithm = get_algorithm("cgkk")
        assert algorithm.name == "cgkk"
        # A fresh object every time (no shared mutable state between runs).
        assert get_algorithm("cgkk") is not algorithm

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_algorithm("does-not-exist")

    def test_register_and_overwrite_semantics(self):
        register_algorithm("test-only-alg", lambda: FunctionAlgorithm(lambda *_: iter(()), "x"))
        try:
            with pytest.raises(ValueError):
                register_algorithm("test-only-alg", lambda: None)
            register_algorithm(
                "test-only-alg", lambda: FunctionAlgorithm(lambda *_: iter(()), "y"), overwrite=True
            )
            assert get_algorithm("test-only-alg").name == "y"
        finally:
            # Clean up the registry for other tests.
            from repro.algorithms import registry

            registry._REGISTRY.pop("test-only-alg", None)

    def test_registered_universal_algorithms_are_usable(self):
        instance = Instance(r=5.0, x=1.0, y=1.0)
        for name in ("stay-put", "cgkk", "latecomers", "almost-universal"):
            result = simulate(instance, get_algorithm(name), max_time=10.0, max_segments=1000)
            assert result.met  # trivial instance: everything meets at time 0


class TestBaseClasses:
    def test_algorithm_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Algorithm().program_for(Instance(r=1.0, x=2.0, y=0.0), None, "A")

    def test_universal_ignores_arguments(self):
        class East(UniversalAlgorithm):
            name = "east"

            def program(self):
                yield Move(1.0, 0.0)

        east = East()
        instance = Instance(r=1.0, x=2.0, y=0.0)
        a = list(east.program_for(instance, instance.agent_a(), "A"))
        b = list(east.program_for(instance, instance.agent_b(), "B"))
        assert a == b == [Move(1.0, 0.0)]

    def test_universal_program_abstract(self):
        with pytest.raises(NotImplementedError):
            list(UniversalAlgorithm().program())

    def test_function_algorithm_name_defaults(self):
        def my_program(instance, spec, role):
            return iter(())

        assert FunctionAlgorithm(my_program).name == "my_program"
        assert FunctionAlgorithm(my_program, "custom").name == "custom"

    def test_repr_contains_name(self):
        assert "cgkk" in repr(get_algorithm("cgkk"))
