"""Run every experiment of the DESIGN.md index and write results/ artifacts.

Usage::

    python scripts/run_all_experiments.py [--quick]

``--quick`` shrinks the sample counts (used by CI-style smoke runs); the
default parameters are the ones recorded in EXPERIMENTS.md.
"""

import argparse
import sys
import time

from repro.experiments import (
    all_figures,
    run_characterization_experiment,
    run_exception_boundary_experiment,
    run_measure_experiment,
    run_scaling_experiment,
    run_schedule_ablation,
    run_timebase_ablation,
    run_universal_coverage_experiment,
)
from repro.util.timers import format_duration


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sample counts")
    parser.add_argument("--results-dir", default=None, help="output directory (default: ./results)")
    args = parser.parse_args(argv)

    scale = 0.5 if args.quick else 1.0

    jobs = [
        ("figures", lambda: all_figures()),
        (
            "theorem-3.1",
            lambda: run_characterization_experiment(
                samples_per_class=max(2, int(10 * scale)),
                infeasible_samples=max(2, int(10 * scale)),
            ),
        ),
        (
            "theorem-3.2",
            lambda: run_universal_coverage_experiment(samples_per_type=max(2, int(8 * scale))),
        ),
        (
            "theorem-4.1",
            lambda: run_exception_boundary_experiment(samples_per_set=max(2, int(6 * scale))),
        ),
        ("section-4-measure", lambda: run_measure_experiment(samples=int(200_000 * scale))),
        ("scaling", lambda: run_scaling_experiment()),
        ("ablation-timebase", lambda: run_timebase_ablation()),
        ("ablation-schedule", lambda: run_schedule_ablation()),
    ]

    overall_start = time.perf_counter()
    for name, job in jobs:
        start = time.perf_counter()
        outcome = job()
        elapsed = time.perf_counter() - start
        results = outcome if isinstance(outcome, list) else [outcome]
        for result in results:
            paths = result.save(args.results_dir)
            print(result.render())
            print(f"[saved] {paths['csv']}")
            print()
        print(f"[{name}] completed in {format_duration(elapsed)}\n" + "=" * 78 + "\n")

    print(f"All experiments completed in {format_duration(time.perf_counter() - overall_start)}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
