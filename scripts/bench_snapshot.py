#!/usr/bin/env python
"""Write a machine-readable engine-performance baseline (``BENCH_engine.json``).

Runs the standard campaign workload (1,000 stratified float-timebase
instances under the compact-schedule universal algorithm) through the
per-instance event-engine loop and the vectorized batch engine, and records
wall times, instances/sec and the speedup.  Re-run after performance work and
diff the JSON: this file is the start of the repo's perf trajectory.

Usage:
    PYTHONPATH=src python scripts/bench_snapshot.py [--output BENCH_engine.json]
        [--instances-per-type 250] [--quick]
        [--check BENCH_engine.json [--check-min-ratio 0.7]]

``--check`` turns the script into a regression gate: after measuring, the
fresh speedup is compared against the committed baseline snapshot and the
process exits non-zero when it falls below ``check-min-ratio`` times the
baseline's — or when the engines disagree on any verdict.  The *ratio* of the
two engines is what gates (not absolute seconds), so the check is meaningful
on hardware slower or faster than the machine that wrote the baseline; the
tolerance absorbs machine-to-machine spread of the ratio itself (CI runners
vs the baseline box, ``--quick``'s smaller amortization).

``--profile`` additionally records the batch engine's phase breakdown
(``repro.obs`` spans, forced on for that one run regardless of ``REPRO_OBS``)
into the snapshot's ``phase_profile`` field.  ``--check`` refuses to run with
observability on — instrumented runs, however cheap, are not the committed
baseline's configuration — so the two flags gate each other's environments:
the check leg proves ``REPRO_OBS=off`` stays on the baseline numbers, the
profile leg documents where the seconds go.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone

from repro import contracts, obs
from repro.algorithms.registry import get_algorithm
from repro.analysis.sampler import InstanceSampler
from repro.core.classification import InstanceClass
from repro.geometry.backends import get_backend, resolve_kernel_threads
from repro.sim.batch import simulate_batch
from repro.sim.engine import RendezvousSimulator

ALGORITHM = "almost-universal-compact"
MAX_TIME = 1e6
MAX_SEGMENTS = 100_000
TYPE_CLASSES = (
    InstanceClass.TYPE_1,
    InstanceClass.TYPE_2,
    InstanceClass.TYPE_3,
    InstanceClass.TYPE_4,
)


def stratified_instances(per_type: int):
    sampler = InstanceSampler(seed=7)
    instances = []
    for cls in TYPE_CLASSES:
        instances.extend(sampler.batch_of_class(cls, per_type))
    return instances


def timed(func, *args, **kwargs):
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return time.perf_counter() - start, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_engine.json")
    parser.add_argument("--instances-per-type", type=int, default=250)
    parser.add_argument(
        "--quick", action="store_true",
        help="25 instances per type (smoke-test the script itself)",
    )
    parser.add_argument(
        "--skip-event", action="store_true",
        help="only measure the batch engine (no speedup field)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare the fresh speedup against this committed snapshot and "
             "exit non-zero on regression (requires the event measurement)",
    )
    parser.add_argument(
        "--check-min-ratio", type=float, default=0.7,
        help="fresh speedup must reach this fraction of the baseline's "
             "(default 0.7; use a smaller value for --quick/CI runners)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="record the batch engine's phase breakdown (repro.obs spans, "
             "forced on for that run) into the snapshot's phase_profile field",
    )
    args = parser.parse_args()
    per_type = 25 if args.quick else args.instances_per_type
    baseline_speedup = None
    if args.check:
        # Validate the baseline up front: a typo'd path or a speedup-less
        # snapshot should fail before the multi-minute measurement, not after.
        if args.skip_event:
            parser.error("--check needs the event measurement; drop --skip-event")
        if contracts.mode() != "off":
            # The committed baselines were measured with contract checking
            # off (the production default); a checked run measures the
            # contracts, not the engine.  This gate is also the bench-smoke
            # proof that REPRO_CONTRACTS=off stays on the baseline numbers.
            parser.error(
                f"--check requires {contracts.MODE_ENV}=off "
                f"(currently {contracts.mode()!r}): contract-checked runs "
                "are not comparable to the committed baseline"
            )
        if obs.mode() != "off":
            # Same reasoning one layer over: the off-mode seam must cost one
            # module-global read, and this gate is where that claim is held
            # to the baseline numbers.
            parser.error(
                f"--check requires {obs.MODE_ENV}=off "
                f"(currently {obs.mode()!r}): instrumented runs are not "
                "comparable to the committed baseline"
            )
        with open(args.check) as handle:
            baseline_speedup = json.load(handle).get("speedup")
        if baseline_speedup is None:
            parser.error(f"--check baseline {args.check} carries no speedup field")

    instances = stratified_instances(per_type)
    print(f"workload: {len(instances)} stratified instances, algorithm={ALGORITHM}, "
          f"max_time={MAX_TIME:g}, max_segments={MAX_SEGMENTS}")

    def run_batch(**kwargs):
        return simulate_batch(
            instances, get_algorithm(ALGORITHM),
            max_time=MAX_TIME, max_segments=MAX_SEGMENTS, **kwargs,
        )

    run_batch()  # warm program/phase caches
    batch_seconds = min(timed(run_batch)[0] for _ in range(3))
    _, batch_results = timed(run_batch)
    verdict_seconds = min(
        timed(run_batch, track_min_distance=False)[0] for _ in range(3)
    )
    print(f"batch engine           : {batch_seconds:.3f}s "
          f"({len(instances) / batch_seconds:,.0f} instances/s)")
    print(f"batch engine (verdict) : {verdict_seconds:.3f}s "
          f"({len(instances) / verdict_seconds:,.0f} instances/s)")

    phase_profile = None
    if args.profile:
        # One extra instrumented run, mode forced on for just this block so
        # the timed measurements above stay off-mode.  Registry totals are
        # reset first so the warm-up runs don't leak into the breakdown.
        from repro.obs import core as obs_core

        obs_core.reset_counters()
        with obs_core._override_mode("on"):
            with obs_core.collect() as bucket:
                profile_seconds, _ = timed(run_batch)
        phase_profile = {
            "seconds": round(profile_seconds, 4),
            "phases": {key: round(value, 6) for key, value in sorted(bucket.items())},
        }
        print(f"phase profile          : {profile_seconds:.3f}s instrumented run")
        for key, value in sorted(bucket.items()):
            print(f"  {key:<22s} {value:9.4f}s  ({100 * value / profile_seconds:5.1f}%)")

    # Campaign mode: the same stratified workload declared as a CampaignSpec
    # and run through the orchestrator into a throwaway store.  Measures what
    # the durability layer costs on top of the raw batch engine (sampling,
    # shard loop, npz writes, manifest fsyncs) — instances are spawn-seeded,
    # i.e. an equivalent workload rather than the identical instance list.
    import shutil
    import tempfile

    from repro.campaign import CampaignArm, CampaignSpec, run_campaign

    campaign_spec = CampaignSpec(
        name="bench-campaign",
        arms=(CampaignArm(algorithm=ALGORITHM),),
        classes=tuple(cls.value for cls in TYPE_CLASSES),
        instances_per_cell=per_type,
        seed=7,
        simulator={"max_time": MAX_TIME, "max_segments": MAX_SEGMENTS},
        shard_size=256,
    )
    campaign_dir = tempfile.mkdtemp(prefix="bench-campaign-")
    try:
        campaign_seconds, campaign_stats = timed(run_campaign, campaign_dir, campaign_spec)
    finally:
        shutil.rmtree(campaign_dir, ignore_errors=True)
    campaign_total = campaign_spec.total_instances
    print(f"campaign mode          : {campaign_seconds:.3f}s "
          f"({campaign_total / campaign_seconds:,.0f} instances/s, "
          f"{campaign_stats.shards_executed} shards, "
          f"{campaign_seconds / batch_seconds:.2f}x the raw batch time)")

    snapshot = {
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "workload": {
            "instances": len(instances),
            "stratification": [cls.value for cls in TYPE_CLASSES],
            "algorithm": ALGORITHM,
            "max_time": MAX_TIME,
            "max_segments": MAX_SEGMENTS,
            "seed": 7,
        },
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        # The kernel settings the measurement ran under (environment-resolved:
        # REPRO_KERNEL_BACKEND / REPRO_KERNEL_THREADS).  Results never depend
        # on them, but wall times do — a baseline written under a different
        # setting is not comparable second-for-second.
        "kernel": {
            "backend": get_backend(None).name,
            "threads": resolve_kernel_threads(None),
        },
        # Contract-checking mode of the measurement (see repro.contracts):
        # always "off" for comparable baselines, recorded so a snapshot taken
        # under check/raise can never be mistaken for one.
        "contracts": contracts.mode(),
        # Observability mode of the *timed* runs (see repro.obs): same story
        # as contracts — "off" for comparable baselines.  --profile's
        # instrumented run is a separate, untimed-by-the-baseline pass.
        "obs": obs.mode(),
        "batch_engine": {
            "seconds": round(batch_seconds, 4),
            "instances_per_second": round(len(instances) / batch_seconds, 1),
            "met": sum(r.met for r in batch_results),
        },
        "batch_engine_verdict_only": {
            "seconds": round(verdict_seconds, 4),
            "instances_per_second": round(len(instances) / verdict_seconds, 1),
        },
        "campaign_mode": {
            "seconds": round(campaign_seconds, 4),
            "instances_per_second": round(campaign_total / campaign_seconds, 1),
            "instances": campaign_total,
            "shards": campaign_stats.shards_executed,
            "shard_size": campaign_spec.shard_size,
            "overhead_vs_batch": round(campaign_seconds / batch_seconds, 3),
        },
    }
    if phase_profile is not None:
        snapshot["phase_profile"] = phase_profile

    if not args.skip_event:
        simulator = RendezvousSimulator(max_time=MAX_TIME, max_segments=MAX_SEGMENTS)
        algorithm = get_algorithm(ALGORITHM)

        def run_event():
            return [simulator.run(instance, algorithm) for instance in instances]

        event_seconds, event_results = timed(run_event)
        print(f"event engine loop      : {event_seconds:.3f}s "
              f"({len(instances) / event_seconds:,.0f} instances/s)")
        agreement = sum(
            e.met == b.met for e, b in zip(event_results, batch_results)
        )
        snapshot["event_engine"] = {
            "seconds": round(event_seconds, 4),
            "instances_per_second": round(len(instances) / event_seconds, 1),
            "met": sum(r.met for r in event_results),
        }
        snapshot["speedup"] = round(event_seconds / batch_seconds, 2)
        snapshot["speedup_verdict_only"] = round(event_seconds / verdict_seconds, 2)
        snapshot["met_agreement"] = f"{agreement}/{len(instances)}"
        print(f"speedup                : {snapshot['speedup']}x "
              f"(verdict-only {snapshot['speedup_verdict_only']}x), "
              f"met agreement {snapshot['met_agreement']}")

    with open(args.output, "w") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    print(f"[saved] {args.output}")

    if args.check:
        floor = baseline_speedup * args.check_min_ratio
        fresh = snapshot["speedup"]
        print(
            f"[check] fresh {fresh:.2f}x vs baseline {baseline_speedup:.2f}x "
            f"(floor {floor:.2f}x = {args.check_min_ratio:g} * baseline)"
        )
        if agreement != len(instances):
            print(f"[check] FAIL: engines disagree ({agreement}/{len(instances)} met)")
            return 1
        if fresh < floor:
            print("[check] FAIL: speedup regression")
            return 1
        print("[check] OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
