#!/usr/bin/env python
"""Service-layer smoke: daemon lifecycle under ``kill -9`` (CI gate).

The whole durable-service story, end to end against real processes and real
sockets, in under a minute:

1. start ``repro serve`` on an ephemeral port (daemon.json discovery);
2. submit one spec **twice** over HTTP — the second submission must
   deduplicate (HTTP 200, same digest, one store directory);
3. ``kill -9`` the daemon mid-campaign — no drain, no shutdown record;
4. restart the daemon: ``/readyz`` must flip to 200 only after journal
   replay + ``doctor(repair=True)`` recovery, and the orphaned job must
   resume and complete **without recomputing any finished shard**
   (``rows_recomputed == 0`` in the journaled stats);
5. ``repro campaign report --check`` on the store must pass (checksums),
   and the exported columns must be byte-identical to an uninterrupted
   reference run of the same spec.

Usage:
    PYTHONPATH=src python scripts/service_smoke.py [--keep DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request


def fail(message: str) -> None:
    print(f"[service-smoke] FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        result = predicate()
        if result:
            return result
        time.sleep(0.1)
    fail(f"timed out after {timeout}s waiting for {what}")


def http_json(url, data=None, timeout=15):
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data else "GET",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def start_daemon(service_dir, env):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--service-dir", service_dir, "--log-level", "debug",
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    daemon_file = os.path.join(service_dir, "daemon.json")

    def discovered():
        if process.poll() is not None:
            fail(f"daemon exited prematurely with {process.returncode}")
        if not os.path.exists(daemon_file):
            return None
        try:
            with open(daemon_file) as handle:
                info = json.load(handle)
        except (json.JSONDecodeError, OSError):
            return None
        # A kill -9 leaves the previous session's daemon.json behind; only
        # trust the file once *this* process republished it.
        return info if info.get("pid") == process.pid else None

    info = wait_for(discovered, 60, "daemon.json")
    return process, f"http://{info['host']}:{info['port']}"


def ready(url):
    try:
        return http_json(f"{url}/readyz")[0] == 200
    except (urllib.error.URLError, OSError):
        return False


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--keep", metavar="DIR", default=None,
        help="keep the service directory under DIR instead of a temp dir",
    )
    args = parser.parse_args()

    from repro.campaign import CampaignArm, CampaignSpec, CampaignStore, run_campaign
    from repro.cli import main as cli_main

    # Big enough that the kill lands mid-campaign, small enough for CI.
    spec = CampaignSpec(
        name="service-smoke",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1", "type-2"),
        instances_per_cell=24,
        seed=41,
        simulator={"max_time": 1e6, "max_segments": 30_000},
        shard_size=4,
    )
    body = spec.to_json().encode()

    root = args.keep or tempfile.mkdtemp(prefix="service-smoke-")
    service_dir = os.path.join(root, "service")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p
        for p in (os.path.join(os.getcwd(), "src"), os.environ.get("PYTHONPATH"))
        if p
    )
    process = None
    try:
        print("[service-smoke] 1/5 starting daemon")
        process, url = start_daemon(service_dir, env)
        wait_for(lambda: ready(url), 30, "/readyz == 200")

        print("[service-smoke] 2/5 submitting the spec twice (dedup)")
        code, first = http_json(f"{url}/campaigns", data=body)
        if code != 201 or first["deduplicated"]:
            fail(f"first submission: expected fresh 201, got {code} {first}")
        code, second = http_json(f"{url}/campaigns", data=body)
        if code != 200 or not second["deduplicated"]:
            fail(f"second submission: expected dedup 200, got {code} {second}")
        if second["digest"] != first["digest"]:
            fail("dedup changed the digest")
        digest = first["digest"]
        stores = os.path.join(service_dir, "stores")
        store_dirs = [d for d in os.listdir(stores)] if os.path.isdir(stores) else []
        if len(store_dirs) > 1:
            fail(f"dedup must share one store directory, found {store_dirs}")

        print("[service-smoke] 3/5 kill -9 mid-campaign")
        wait_for(
            lambda: http_json(f"{url}/campaigns/{digest}/status")[1]["job"]["state"]
            == "running",
            60,
            "job to start running",
        )
        # Let at least one shard commit so zero-recompute is observable.
        def progress():
            _, status = http_json(f"{url}/campaigns/{digest}/status")
            campaign = status.get("campaign")
            return campaign and campaign["shards_complete"] >= 1
        wait_for(progress, 120, "one committed shard")
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)
        if process.returncode != -signal.SIGKILL:
            fail(f"daemon exit code {process.returncode}, expected SIGKILL")
        if not os.path.exists(os.path.join(service_dir, "daemon.json")):
            fail("kill -9 should leave daemon.json behind (no drain ran)")

        print("[service-smoke] 4/5 restart: recover, readyz, resume to completion")
        process, url = start_daemon(service_dir, env)
        wait_for(lambda: ready(url), 60, "post-crash /readyz")
        _, status = http_json(f"{url}/campaigns/{digest}/status")
        if status["job"]["state"] not in ("running", "complete"):
            fail(f"crash-orphaned job replayed as {status['job']['state']}")

        def completed():
            _, current = http_json(f"{url}/campaigns/{digest}/status")
            return current["job"]["state"] == "complete" and current
        status = wait_for(completed, 300, "job completion after recovery")
        stats = status["job"]["stats"]
        if stats["rows_recomputed"] != 0:
            fail(f"resume recomputed {stats['rows_recomputed']} rows, expected 0")
        if status["campaign"]["shards_complete"] != status["campaign"]["shards_total"]:
            fail("campaign incomplete after recovery")

        # Graceful drain this time: clean shutdown record, daemon.json gone.
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=60)
        if process.returncode != 0:
            fail(f"drained daemon exited {process.returncode}")
        if os.path.exists(os.path.join(service_dir, "daemon.json")):
            fail("graceful drain should remove daemon.json")

        print("[service-smoke] 5/5 report --check + byte-identity reference")
        store_dir = os.path.join(service_dir, "stores", digest)
        code = cli_main(["campaign", "report", "--campaign-dir", store_dir, "--check"])
        if code != 0:
            fail(f"report --check exited {code}")
        reference_dir = os.path.join(root, "reference")
        reference = run_campaign(reference_dir, spec)
        if not reference.complete:
            fail("reference run did not complete")
        a = CampaignStore(reference_dir).export_columns()
        b = CampaignStore(store_dir).export_columns()
        for name in a:
            if a[name].tobytes() != b[name].tobytes():
                fail(f"column {name!r} differs from the uninterrupted reference")
        print(
            "[service-smoke] OK: dedup held, kill -9 recovered losslessly, "
            "zero recomputed rows, bytes identical"
        )
    finally:
        if process is not None and process.poll() is None:
            process.kill()
            process.wait()
        if args.keep is None:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
