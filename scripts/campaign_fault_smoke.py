#!/usr/bin/env python
"""Fault-injection smoke of the campaign robustness stack (CI gate).

Drives the failure modes the CLI alone cannot reach (fault hooks are a
Python API), end to end in a few seconds:

1. a sequential uninterrupted run — the byte-identity reference;
2. a ``--workers 2`` run against a *kill-one-worker* hook plus a poison
   shard that exhausts its attempts and is quarantined (the campaign
   degrades instead of aborting);
3. in-place corruption of one committed shard file;
4. ``campaign doctor`` must FAIL, ``doctor --repair`` must delete the
   corrupt shard and clear the quarantine ledger;
5. ``campaign resume`` must recompute exactly the broken work, and
   ``report --check`` plus a final ``doctor`` must pass;
6. the recovered store's exported columns must be **byte-identical** to the
   reference — faults may cost work, never bytes.

Usage:
    PYTHONPATH=src python scripts/campaign_fault_smoke.py [--keep DIR]
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile


def fail(message: str) -> None:
    print(f"[fault-smoke] FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--keep", metavar="DIR", default=None,
        help="keep the campaign directories under DIR instead of a temp dir",
    )
    args = parser.parse_args()

    from repro.campaign import (
        CampaignArm,
        CampaignSpec,
        CampaignStore,
        FaultInjection,
        plan_shards,
        run_campaign,
    )
    from repro.cli import main as cli_main

    spec = CampaignSpec(
        name="fault-smoke",
        arms=(CampaignArm(algorithm="almost-universal-compact"),),
        classes=("type-1", "type-2"),
        instances_per_cell=8,
        seed=17,
        simulator={"max_time": 1e6, "max_segments": 30_000},
        shard_size=4,
    )
    plan = plan_shards(spec)
    kill_target = plan[0].shard_id
    poison_target = plan[-1].shard_id
    killed = set()

    def faulty_hook(shard):
        if shard.shard_id == kill_target and shard.shard_id not in killed:
            killed.add(shard.shard_id)
            raise FaultInjection("kill")
        if shard.shard_id == poison_target:
            raise FaultInjection("fail")

    root = args.keep or tempfile.mkdtemp(prefix="campaign-fault-smoke-")
    reference_dir = os.path.join(root, "reference")
    faulty_dir = os.path.join(root, "faulty")
    try:
        print("[fault-smoke] 1/6 sequential reference run")
        reference = run_campaign(reference_dir, spec)
        if not reference.complete:
            fail("reference run did not complete")

        print("[fault-smoke] 2/6 workers=2 run with kill + poison faults")
        stats = run_campaign(
            faulty_dir, spec, workers=2, shard_hook=faulty_hook,
            max_attempts=2, retry_backoff=0.05, progress=print,
        )
        if stats.worker_restarts < 1:
            fail(f"expected a worker restart, got {stats.worker_restarts}")
        if stats.shards_quarantined != 1:
            fail(f"expected 1 quarantined shard, got {stats.shards_quarantined}")
        if stats.complete:
            fail("degraded run should not report complete")

        print("[fault-smoke] 3/6 corrupting one committed shard")
        store = CampaignStore(faulty_dir)
        committed = sorted(store.completed())[0]
        with open(store.shard_path(committed), "r+b") as handle:
            handle.write(b"corrupt!")

        print("[fault-smoke] 4/6 doctor must fail, then --repair")
        code = cli_main(["campaign", "doctor", "--campaign-dir", faulty_dir])
        if code != 1:
            fail(f"doctor on a corrupt store exited {code}, expected 1")
        code = cli_main(["campaign", "doctor", "--campaign-dir", faulty_dir, "--repair"])
        if code != 3:
            fail(f"doctor --repair exited {code}, expected 3 (clean but incomplete)")

        print("[fault-smoke] 5/6 resume + report --check + final doctor")
        code = cli_main(["campaign", "resume", "--campaign-dir", faulty_dir])
        if code != 0:
            fail(f"resume after repair exited {code}")
        code = cli_main(["campaign", "report", "--campaign-dir", faulty_dir, "--check"])
        if code != 0:
            fail(f"report --check exited {code}")
        code = cli_main(["campaign", "doctor", "--campaign-dir", faulty_dir])
        if code != 0:
            fail(f"final doctor exited {code}")

        print("[fault-smoke] 6/6 byte-identity against the reference")
        a = CampaignStore(reference_dir).export_columns()
        b = CampaignStore(faulty_dir).export_columns()
        for name in a:
            if a[name].tobytes() != b[name].tobytes():
                fail(f"column {name!r} differs from the sequential reference")
        print("[fault-smoke] OK: recovered store is byte-identical to the reference")
    finally:
        if args.keep is None:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
