"""Developer smoke test: quick end-to-end sanity checks of the core pipeline."""

import math
import time

from repro import (
    AlmostUniversalRV,
    CGKK,
    DedicatedRendezvous,
    Instance,
    Latecomers,
    classify,
    simulate,
)
from repro.algorithms.dedicated import (
    AlignedDelayWalk,
    AsynchronousWaitAndSweep,
    Lemma39Boundary,
    LinearProbe,
    OppositeChiralityLineSearch,
)
from repro.core.canonical import projection_distance


def check(label, result, expect_met=True):
    status = "OK " if result.met == expect_met else "FAIL"
    print(
        f"{status} {label:45s} met={result.met} t={result.meeting_time} "
        f"min_d={result.min_distance:.4g} segs={result.segments_total} wall={result.elapsed_wall_seconds:.2f}s"
    )
    return result.met == expect_met


ok = True

# Dedicated witnesses -------------------------------------------------------------
inst_2a = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2, chi=1)
ok &= check("LinearProbe on clause 2a", simulate(inst_2a, LinearProbe()))

inst_async = Instance(r=0.5, x=2.0, y=0.0, tau=2.0, v=1.0, t=1.0)
ok &= check("WaitAndSweep on tau=2", simulate(inst_async, AsynchronousWaitAndSweep(), max_time=1e9))

inst_2b = Instance(r=0.5, x=3.0, y=0.0, t=4.0)
ok &= check("AlignedDelayWalk on clause 2b", simulate(inst_2b, AlignedDelayWalk()))

inst_2c = Instance(r=0.5, x=2.0, y=1.0, phi=0.0, chi=-1, t=2.0)
print("  proj distance 2c:", projection_distance(inst_2c))
ok &= check("LineSearch on clause 2c", simulate(inst_2c, OppositeChiralityLineSearch(), max_time=1e6))

pd = projection_distance(inst_2c)
inst_s2 = Instance(r=0.5, x=2.0, y=1.0, phi=0.0, chi=-1, t=pd - 0.5)
ok &= check("Lemma39 on S2 boundary", simulate(inst_s2, Lemma39Boundary()))

# Universal sub-procedures ---------------------------------------------------------
inst_type4 = Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2, chi=1, t=0.0)
ok &= check("CGKK on type 4 (t=0)", simulate(inst_type4, CGKK(), max_time=1e5))

inst_type2 = Instance(r=0.6, x=1.0, y=0.0, t=1.5)
ok &= check("Latecomers on type 2", simulate(inst_type2, Latecomers(), max_time=1e5))

# AlmostUniversalRV -----------------------------------------------------------------
t0 = time.time()
ok &= check(
    "AURV on type 4",
    simulate(Instance(r=0.5, x=1.0, y=1.0, phi=math.pi / 2, chi=1, t=0.5),
             AlmostUniversalRV(), max_time=1e12, max_segments=2_000_000),
)
print(f"   (AURV type-4 wall: {time.time()-t0:.1f}s)")

t0 = time.time()
ok &= check(
    "AURV on type 2",
    simulate(Instance(r=0.6, x=1.0, y=0.0, t=1.5),
             AlmostUniversalRV(), max_time=1e12, max_segments=2_000_000),
)
print(f"   (AURV type-2 wall: {time.time()-t0:.1f}s)")

t0 = time.time()
ok &= check(
    "AURV on type 1",
    simulate(Instance(r=0.5, x=2.0, y=1.0, phi=0.0, chi=-1, t=2.0),
             AlmostUniversalRV(), max_time=1e12, max_segments=3_000_000),
)
print(f"   (AURV type-1 wall: {time.time()-t0:.1f}s)")

t0 = time.time()
ok &= check(
    "AURV on type 3 (exact timebase)",
    simulate(Instance(r=0.5, x=1.0, y=0.0, tau=0.5, v=1.0, t=0.0),
             AlmostUniversalRV(), max_time=1e45, max_segments=2_000_000, timebase="exact"),
)
print(f"   (AURV type-3 wall: {time.time()-t0:.1f}s)")

# Infeasible ------------------------------------------------------------------------
inst_bad = Instance(r=0.5, x=3.0, y=0.0, t=0.5)
print("classify infeasible:", classify(inst_bad).value)
ok &= check("AURV on infeasible (expect no meet)",
            simulate(inst_bad, AlmostUniversalRV(), max_time=1e6, max_segments=300_000),
            expect_met=False)

print("\nALL OK" if ok else "\nSOME CHECKS FAILED")
